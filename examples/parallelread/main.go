// Parallelread compares file retrieval from a simulated cluster whose
// datanodes cap reads at 300 Mbps (the setting of the paper's Fig. 11):
// sequential block-by-block download of a replicated file, a parallel read
// of the k data blocks of an RS file, and the (12,6,10,10) Carousel
// parallel read from p=10 blocks — with and without a lost block.
package main

import (
	"fmt"
	"log"

	"carousel"
	"carousel/internal/workload"
)

const (
	mbps      = 1e6 / 8
	blockSize = 16 * 1000 * 100 // 1.6 MB, aligned for the carousel code
	fileSize  = 6 * blockSize
)

func main() {
	code, err := carousel.New(12, 6, 10, 10)
	if err != nil {
		log.Fatal(err)
	}
	if blockSize%code.BlockAlign() != 0 {
		log.Fatalf("block size %d not aligned to %d", blockSize, code.BlockAlign())
	}
	rs, err := carousel.NewReedSolomon(12, 6)
	if err != nil {
		log.Fatal(err)
	}
	data := workload.Text(fileSize, 1)

	type variant struct {
		name   string
		scheme carousel.Scheme
		mode   int // 0 = sequential, 1 = parallel
	}
	variants := []variant{
		{"3x replication, sequential get", carousel.SchemeReplication{Copies: 3}, 0},
		{"RS(12,6), parallel (6 streams)", carousel.SchemeRS{Code: rs}, 1},
		{"Carousel(12,6,10,10), parallel (10 streams)", carousel.SchemeCarousel{Code: code}, 1},
	}
	for _, withFailure := range []bool{false, true} {
		label := "no failure"
		if withFailure {
			label = "one data block lost"
		}
		fmt.Printf("--- %s ---\n", label)
		for _, v := range variants {
			sim := carousel.NewSim()
			cl := carousel.NewCluster(sim, 18, carousel.NodeSpec{DiskReadBW: 300 * mbps})
			client := cl.AddNode("client", carousel.NodeSpec{NetInBW: 2500 * mbps})
			fs := carousel.NewFS(cl, cl.Nodes()[:18])
			if _, err := fs.Write("file", data, blockSize, v.scheme); err != nil {
				log.Fatal(err)
			}
			if withFailure {
				if _, isRepl := v.scheme.(carousel.SchemeReplication); isRepl {
					if err := fs.FailReplica("file", 0, 0, 0); err != nil {
						log.Fatal(err)
					}
				} else if err := fs.FailBlock("file", 0, 0); err != nil {
					log.Fatal(err)
				}
			}
			mode := carousel.ReadSequential
			if v.mode == 1 {
				mode = carousel.ReadParallel
			}
			var took float64
			sim.Go("get", func(p *carousel.Proc) {
				res, err := fs.Read(p, client, "file", mode)
				if err != nil {
					log.Fatal(err)
				}
				if len(res.Data) != fileSize {
					log.Fatalf("short read: %d bytes", len(res.Data))
				}
				took = p.Now()
			})
			sim.Run()
			fmt.Printf("  %-46s %7.2f s\n", v.name, took)
		}
	}
	fmt.Println("\nCarousel reads original data from 10 servers at once; RS is limited to")
	fmt.Println("its 6 data blocks, and the sequential get pays for every block in turn.")
}
