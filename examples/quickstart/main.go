// Quickstart: encode a buffer with a (12, 6, 10, 12) Carousel code, lose
// the maximum tolerable number of blocks, read the data back, and repair a
// lost block with optimal network traffic.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"carousel"
)

func main() {
	// An (n=12, k=6, d=10, p=12) code: 2x storage overhead like RS(12,6),
	// tolerates any 6 lost blocks, but embeds original data in all 12
	// blocks and repairs one loss with 2 blocks of traffic instead of 6.
	code, err := carousel.New(12, 6, 10, 12)
	if err != nil {
		log.Fatal(err)
	}

	original := make([]byte, 1<<20)
	rand.New(rand.NewSource(42)).Read(original)

	// Split pads the data into k aligned shards; Encode produces n blocks.
	shards, blockSize, err := carousel.Split(original, code.K(), code.BlockAlign())
	if err != nil {
		log.Fatal(err)
	}
	blocks, err := code.Encode(shards)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded %d bytes into %d blocks of %d bytes\n", len(original), len(blocks), blockSize)
	for i := 0; i < code.P(); i++ {
		lo, hi := code.DataRange(i, blockSize)
		fmt.Printf("  block %2d holds original bytes [%7d, %7d) at its front\n", i, lo, hi)
	}

	// Lose n-k = 6 blocks: the worst tolerable failure.
	for _, i := range []int{0, 2, 4, 6, 8, 10} {
		blocks[i] = nil
	}
	data, err := code.ParallelRead(blocks)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(data[:len(original)], original) {
		log.Fatal("decoded data differs from the original")
	}
	fmt.Println("recovered the full file from the 6 surviving blocks")

	// Repair block 0 from d=10 helpers. First restore enough blocks to
	// have 10 survivors (re-encode), then regenerate.
	blocks, err = code.Encode(shards)
	if err != nil {
		log.Fatal(err)
	}
	want := blocks[0]
	helpers := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	repaired, err := code.Repair(0, helpers, blocks)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(repaired, want) {
		log.Fatal("repair produced a different block")
	}
	fmt.Printf("repaired block 0 moving %d bytes (%.2f blocks); an RS repair moves %d bytes (%d blocks)\n",
		code.ReconstructionTraffic(blockSize),
		float64(code.ReconstructionTraffic(blockSize))/float64(blockSize),
		code.K()*blockSize, code.K())
}
