// Benchmarks regenerating the paper's evaluation, one family per figure.
// The cmd/codingbench and cmd/clusterbench harnesses print the full tables;
// these testing.B benches pin the same measurements into `go test -bench`.
//
//	Fig. 6a -> BenchmarkFig6aEncode      (throughput via -benchmem MB/s)
//	Fig. 6b -> BenchmarkFig6bDecode
//	Fig. 7  -> BenchmarkFig7RepairTraffic (blocks-moved reported as a metric)
//	Fig. 8a -> BenchmarkFig8aNewcomer
//	Fig. 8b -> BenchmarkFig8bHelper
//	Fig. 9  -> BenchmarkFig9WordCount    (simulated cluster job, real task logic)
//	Fig. 11 -> BenchmarkFig11ParallelRead
package carousel_test

import (
	"fmt"
	"math/rand"
	"testing"

	"carousel"
	"carousel/internal/workload"
)

// benchKs mirrors the paper's x-axis; kept small here so `go test -bench=.`
// stays quick — cmd/codingbench sweeps the full range.
var benchKs = []int{2, 4, 6}

const benchMB = 1 << 20

type family struct {
	k    int
	rs   *carousel.ReedSolomon
	carK *carousel.Code
	msr  *carousel.MSR
	carD *carousel.Code
}

func newFamily(b *testing.B, k int) *family {
	b.Helper()
	n := 2 * k
	rs, err := carousel.NewReedSolomon(n, k)
	if err != nil {
		b.Fatal(err)
	}
	carK, err := carousel.New(n, k, k, n)
	if err != nil {
		b.Fatal(err)
	}
	m, err := carousel.NewMSR(n, k, 2*k-1)
	if err != nil {
		b.Fatal(err)
	}
	carD, err := carousel.New(n, k, 2*k-1, n)
	if err != nil {
		b.Fatal(err)
	}
	return &family{k: k, rs: rs, carK: carK, msr: m, carD: carD}
}

func (f *family) blockSize() int {
	align := f.carK.BlockAlign() * f.carD.BlockAlign() * f.msr.Alpha()
	return (benchMB + align - 1) / align * align
}

func benchShards(k, size int) [][]byte {
	rng := rand.New(rand.NewSource(int64(k)))
	out := make([][]byte, k)
	for i := range out {
		out[i] = make([]byte, size)
		rng.Read(out[i])
	}
	return out
}

func BenchmarkFig6aEncode(b *testing.B) {
	for _, k := range benchKs {
		f := newFamily(b, k)
		size := f.blockSize()
		data := benchShards(k, size)
		cases := []struct {
			name string
			fn   func() error
		}{
			{"RS", func() error { _, err := f.rs.Encode(data); return err }},
			{"Carousel_dk", func() error { _, err := f.carK.Encode(data); return err }},
			{"MSR", func() error { _, err := f.msr.Encode(data); return err }},
			{"Carousel_d2k1", func() error { _, err := f.carD.Encode(data); return err }},
		}
		for _, c := range cases {
			b.Run(fmt.Sprintf("%s/k=%d", c.name, k), func(b *testing.B) {
				b.SetBytes(int64(k * size))
				for i := 0; i < b.N; i++ {
					if err := c.fn(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkFig6bDecode(b *testing.B) {
	for _, k := range benchKs {
		f := newFamily(b, k)
		size := f.blockSize()
		data := benchShards(k, size)
		survive := func(blocks [][]byte) [][]byte {
			avail := make([][]byte, len(blocks))
			for i := 1; i <= k; i++ {
				avail[i] = blocks[i]
			}
			return avail
		}
		rsB, _ := f.rs.Encode(data)
		ckB, _ := f.carK.Encode(data)
		msB, _ := f.msr.Encode(data)
		cdB, _ := f.carD.Encode(data)
		cases := []struct {
			name string
			fn   func() error
		}{
			{"RS", func() error { _, err := f.rs.Decode(survive(rsB)); return err }},
			{"Carousel_dk", func() error { _, err := f.carK.Decode(survive(ckB)); return err }},
			{"MSR", func() error { _, err := f.msr.Decode(survive(msB)); return err }},
			{"Carousel_d2k1", func() error { _, err := f.carD.Decode(survive(cdB)); return err }},
		}
		for _, c := range cases {
			b.Run(fmt.Sprintf("%s/k=%d", c.name, k), func(b *testing.B) {
				b.SetBytes(int64(k * size))
				for i := 0; i < b.N; i++ {
					if err := c.fn(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig7RepairTraffic reports the repair traffic in block units as
// a custom metric (it is a property of the code, not a timing).
func BenchmarkFig7RepairTraffic(b *testing.B) {
	for _, k := range benchKs {
		f := newFamily(b, k)
		size := f.blockSize()
		cases := []struct {
			name    string
			traffic int
		}{
			{"RS", f.rs.ReconstructionTraffic(size)},
			{"Carousel_dk", f.carK.ReconstructionTraffic(size)},
			{"MSR", f.msr.ReconstructionTraffic(size)},
			{"Carousel_d2k1", f.carD.ReconstructionTraffic(size)},
		}
		for _, c := range cases {
			b.Run(fmt.Sprintf("%s/k=%d", c.name, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = c.traffic
				}
				b.ReportMetric(float64(c.traffic)/float64(size), "blocks-moved")
			})
		}
	}
}

func firstHelpers(n, d, failed int) []int {
	out := make([]int, 0, d)
	for i := 0; i < n && len(out) < d; i++ {
		if i != failed {
			out = append(out, i)
		}
	}
	return out
}

func BenchmarkFig8aNewcomer(b *testing.B) {
	for _, k := range benchKs {
		f := newFamily(b, k)
		size := f.blockSize()
		data := benchShards(k, size)

		rsB, _ := f.rs.Encode(data)
		b.Run(fmt.Sprintf("RS/k=%d", k), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				work := make([][]byte, len(rsB))
				copy(work, rsB)
				work[0] = nil
				if err := f.rs.Reconstruct(work); err != nil {
					b.Fatal(err)
				}
			}
		})

		msB, _ := f.msr.Encode(data)
		msHelpers := firstHelpers(f.msr.N(), f.msr.D(), 0)
		msChunks := make([][]byte, len(msHelpers))
		for i, h := range msHelpers {
			msChunks[i], _ = f.msr.HelperChunk(h, 0, msB[h])
		}
		b.Run(fmt.Sprintf("MSR/k=%d", k), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if _, err := f.msr.RepairBlock(0, msHelpers, msChunks); err != nil {
					b.Fatal(err)
				}
			}
		})

		cdB, _ := f.carD.Encode(data)
		cdHelpers := firstHelpers(f.carD.N(), f.carD.D(), 0)
		cdChunks := make([][]byte, len(cdHelpers))
		for i, h := range cdHelpers {
			cdChunks[i], _ = f.carD.HelperChunk(h, 0, cdB[h])
		}
		b.Run(fmt.Sprintf("Carousel_d2k1/k=%d", k), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if _, err := f.carD.RepairBlock(0, cdHelpers, cdChunks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig8bHelper(b *testing.B) {
	for _, k := range benchKs {
		f := newFamily(b, k)
		size := f.blockSize()
		data := benchShards(k, size)
		msB, _ := f.msr.Encode(data)
		b.Run(fmt.Sprintf("MSR/k=%d", k), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if _, err := f.msr.HelperChunk(1, 0, msB[1]); err != nil {
					b.Fatal(err)
				}
			}
		})
		cdB, _ := f.carD.Encode(data)
		b.Run(fmt.Sprintf("Carousel_d2k1/k=%d", k), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if _, err := f.carD.HelperChunk(1, 0, cdB[1]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9WordCount runs the simulated-cluster wordcount job (real
// task logic, simulated time) under RS and Carousel; the metric of
// interest is the reported sim-map-s, not ns/op.
func BenchmarkFig9WordCount(b *testing.B) {
	code, err := carousel.New(12, 6, 10, 12)
	if err != nil {
		b.Fatal(err)
	}
	rs, err := carousel.NewReedSolomon(12, 6)
	if err != nil {
		b.Fatal(err)
	}
	blockSize := benchMB / code.BlockAlign() * code.BlockAlign()
	data := workload.Text(6*blockSize, 9)
	run := func(b *testing.B, scheme carousel.Scheme) {
		var mapS, jobS float64
		for i := 0; i < b.N; i++ {
			sim := carousel.NewSim()
			cl := carousel.NewCluster(sim, 30, carousel.NodeSpec{
				DiskReadBW: 3.125 * benchMB, DiskWriteBW: 3.125 * benchMB,
				NetInBW: 3.9 * benchMB, NetOutBW: 3.9 * benchMB,
				Slots: 2, ComputeBW: 0.625 * benchMB,
			})
			fs := carousel.NewFS(cl, cl.Nodes())
			if _, err := fs.Write("text", data, blockSize, scheme); err != nil {
				b.Fatal(err)
			}
			eng := carousel.NewMapReduce(cl, fs, cl.Nodes(), carousel.MRCostSpec{
				TaskOverhead: 3, MapCPUFactor: 1, ReduceCPUFactor: 1,
			})
			res, err := eng.Run(carousel.WordCountJob("text", 6))
			if err != nil {
				b.Fatal(err)
			}
			mapS, jobS = res.AvgMapSeconds, res.JobSeconds
		}
		b.ReportMetric(mapS, "sim-map-s")
		b.ReportMetric(jobS, "sim-job-s")
	}
	b.Run("RS", func(b *testing.B) { run(b, carousel.SchemeRS{Code: rs}) })
	b.Run("Carousel_p12", func(b *testing.B) { run(b, carousel.SchemeCarousel{Code: code}) })
}

// BenchmarkFig11ParallelRead reports the simulated retrieval time of a
// file from capped datanodes under each scheme.
func BenchmarkFig11ParallelRead(b *testing.B) {
	const mbps = 1e6 / 8
	code, err := carousel.New(12, 6, 10, 10)
	if err != nil {
		b.Fatal(err)
	}
	rs, err := carousel.NewReedSolomon(12, 6)
	if err != nil {
		b.Fatal(err)
	}
	blockSize := benchMB / code.BlockAlign() * code.BlockAlign()
	data := workload.Text(6*blockSize, 11)
	run := func(b *testing.B, scheme carousel.Scheme, mode int) {
		var took float64
		for i := 0; i < b.N; i++ {
			sim := carousel.NewSim()
			cl := carousel.NewCluster(sim, 18, carousel.NodeSpec{DiskReadBW: 300 * mbps / 32})
			client := cl.AddNode("client", carousel.NodeSpec{NetInBW: 2500 * mbps / 32})
			fs := carousel.NewFS(cl, cl.Nodes()[:18])
			if _, err := fs.Write("f", data, blockSize, scheme); err != nil {
				b.Fatal(err)
			}
			rm := carousel.ReadSequential
			if mode == 1 {
				rm = carousel.ReadParallel
			}
			sim.Go("get", func(p *carousel.Proc) {
				res, err := fs.Read(p, client, "f", rm)
				if err != nil {
					b.Error(err)
					return
				}
				_ = res
				took = p.Now()
			})
			sim.Run()
		}
		b.ReportMetric(took, "sim-read-s")
	}
	b.Run("Replication3x_sequential", func(b *testing.B) {
		run(b, carousel.SchemeReplication{Copies: 3}, 0)
	})
	b.Run("RS_parallel", func(b *testing.B) { run(b, carousel.SchemeRS{Code: rs}, 1) })
	b.Run("Carousel_p10_parallel", func(b *testing.B) { run(b, carousel.SchemeCarousel{Code: code}, 1) })
}
