module carousel

go 1.22
