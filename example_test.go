package carousel_test

import (
	"bytes"
	"fmt"
	"log"

	"carousel"
)

// Example demonstrates the core Carousel flow: encode, observe the data
// layout, lose blocks, read in parallel, repair with optimal traffic.
func Example() {
	code, err := carousel.New(12, 6, 10, 12)
	if err != nil {
		log.Fatal(err)
	}
	data := bytes.Repeat([]byte("0123456789"), 1200) // 12000 bytes
	shards, blockSize, err := carousel.Split(data, code.K(), code.BlockAlign())
	if err != nil {
		log.Fatal(err)
	}
	blocks, err := code.Encode(shards)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blocks: %d, data-bearing: %d\n", len(blocks), code.P())
	lo, hi := code.DataRange(0, blockSize)
	fmt.Printf("block 0 holds file bytes [%d, %d) verbatim\n", lo, hi)

	// Lose the tolerance budget and read back.
	for _, i := range []int{0, 2, 4, 6, 8, 10} {
		blocks[i] = nil
	}
	out, err := code.ParallelRead(blocks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %v\n", bytes.Equal(out[:len(data)], data))
	fmt.Printf("repair traffic: %.1f blocks (RS would move %d)\n",
		float64(code.ReconstructionTraffic(blockSize))/float64(blockSize), code.K())
	// Output:
	// blocks: 12, data-bearing: 12
	// block 0 holds file bytes [0, 1000) verbatim
	// recovered: true
	// repair traffic: 2.0 blocks (RS would move 6)
}

// ExampleNew_reedSolomonBase shows the d = k configuration, which uses a
// Reed-Solomon base: same parallelism benefit, classic k-block repair.
func ExampleNew_reedSolomonBase() {
	code, err := carousel.New(6, 3, 3, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("carousel(%d,%d,%d,%d): %d units per block, %d of them data\n",
		code.N(), code.K(), code.D(), code.P(),
		code.UnitsPerBlock(), code.DataUnitsPerBlock())
	// Output:
	// carousel(6,3,3,6): 2 units per block, 1 of them data
}

// ExampleCode_PlanRead inspects how a degraded read will be served before
// moving any bytes.
func ExampleCode_PlanRead() {
	code, err := carousel.New(12, 6, 10, 10)
	if err != nil {
		log.Fatal(err)
	}
	blockSize := 100 * code.BlockAlign()
	avail := make([]bool, 12)
	for i := range avail {
		avail[i] = true
	}
	avail[3] = false // one data-bearing block lost
	plan, err := code.PlanRead(avail, blockSize)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel sources: %d\n", plan.Parallelism())
	fmt.Printf("replacement for block 3: block %d\n", plan.Replacements[3])
	fmt.Printf("total bytes fetched: %d (the original data is %d)\n",
		plan.TotalBytes, 6*blockSize)
	// Output:
	// parallel sources: 10
	// replacement for block 3: block 10
	// total bytes fetched: 3000 (the original data is 3000)
}
