GO ?= go

# Packages whose hot paths share mutable buffers across goroutines; these run
# under the race detector in addition to the normal suite.
RACE_PKGS = ./internal/codeplan ./internal/workpool ./internal/matrix ./internal/carousel ./internal/blockserver

.PHONY: check vet build test race bench

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Regenerate the coding microbenchmarks and the JSON snapshot.
bench:
	$(GO) run ./cmd/codingbench -json
