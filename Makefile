GO ?= go

# Packages whose hot paths share mutable buffers across goroutines; these run
# under the race detector in addition to the normal suite.
RACE_PKGS = ./internal/codeplan ./internal/workpool ./internal/matrix ./internal/carousel ./internal/blockserver ./internal/faultnet ./internal/dfs ./internal/retry ./internal/obs ./internal/bufpool ./internal/stream ./internal/master ./internal/stripecache ./internal/workload

# Packages on the fault-tolerant block path: run twice under the race
# detector to shake out order-dependent leaks and redial races.
FAULT_PKGS = ./internal/blockserver ./internal/dfs ./internal/faultnet

.PHONY: check vet build test race race-tiers faults master bench bench-net bench-recovery bench-sweep obs swarm bench-swarm

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Re-run the kernel-heavy race packages with the GFNI tier disabled, so the
# AVX2 and scalar rungs of the gf256 tier ladder get the same race coverage
# the default (fastest) tier does.
race-tiers:
	GF256_DISABLE=gfni $(GO) test -race ./internal/gf256 ./internal/carousel ./internal/codeplan
	GF256_DISABLE=all $(GO) test ./internal/gf256

# Exercise the fault matrix: injected stragglers, partitions, corruption,
# and crash-mid-read over real TCP, twice, race-enabled.
faults:
	$(GO) test -race -count=2 $(FAULT_PKGS)

# The self-healing control plane: membership/journal/scheduler unit
# tests, the kill-a-node and restart-resume e2e suites, and the
# short-mode chaos test (faultnet-partitioned heartbeats walk a member
# alive -> suspect -> dead -> back with no spurious rebuild), all
# race-enabled over real TCP.
master:
	$(GO) test -race -count=2 ./internal/master
	$(GO) test -race -short -count=1 -run 'TestChaosHeartbeatPartition' ./internal/master

# Regenerate the coding microbenchmarks and the JSON snapshot.
bench:
	$(GO) run ./cmd/codingbench -json

# The multi-core scaling sweep: re-run the coding microbenchmarks and both
# live-TCP A/Bs at GOMAXPROCS 1, 2, 4, and 8, stamping each JSON result row
# with its gomaxprocs axis. On a single-vCPU host the curve is flat — run
# this on a multi-core box to see the engine scale.
bench-sweep:
	$(GO) run ./cmd/codingbench -json -maxprocs 1,2,4,8
	$(GO) run ./cmd/clusterbench -fig net -json -maxprocs 1,2,4,8
	$(GO) run ./cmd/clusterbench -fig recovery -json -maxprocs 1,2,4,8

# The tentpole A/B: pipelined pooled ReadFile/WriteFile vs the sequential
# dial-per-stripe baseline over a live loopback TCP cluster, with
# -benchmem-style allocation counts; refreshes BENCH_clusterbench.json.
bench-net:
	$(GO) run ./cmd/clusterbench -fig net -json

# The recovery A/B: the parallel recovery engine (Store.RecoverServer,
# depth-bounded pipeline + stripe-rotated helpers) vs the sequential repair
# loop, regenerating a failed server's blocks over a live loopback TCP
# cluster with an emulated per-write network RTT; refreshes the recovery
# section of BENCH_clusterbench.json.
bench-recovery:
	$(GO) run ./cmd/clusterbench -fig recovery -json

# The hot-read stripe cache: the S3-FIFO admission and singleflight unit
# suites plus the store-level cache e2es (warm-read zero dials, error
# fan-out, waiter cancellation, invalidation races), race-enabled, then a
# short open-loop Zipf swarm A/B (cache-off vs cache-on, no JSON refresh).
swarm:
	$(GO) test -race -count=2 ./internal/stripecache ./internal/workload
	$(GO) test -race -run 'TestStoreCache|TestStreamPrefetchServesFromCache' ./internal/blockserver
	$(GO) run ./cmd/clusterbench -fig swarm -swarmdur 1s -swarmobjs 128

# The swarm A/B at full length, refreshing the swarm section of
# BENCH_clusterbench.json: open-loop Poisson arrivals at 3x the measured
# cache-off capacity, Zipf(1.1) over 256 objects, hundreds of clients,
# cache-off vs cache-on plus both again under injected stragglers.
bench-swarm:
	$(GO) run ./cmd/clusterbench -fig swarm -json

# The observability layer: metric/span correctness under the race detector,
# the degraded-read and cross-node trace-stitching e2es, the master's
# health roll-up and control-plane trace suites, then a live scrape of
# both a standalone 3-node cluster and a master-managed one.
obs:
	$(GO) test -race ./internal/obs
	$(GO) test -race -run 'TestDegradedReadObservability|TestReadStatsCountsAllCorruptVerdicts|TestCrossNodeTraceStitching|TestTracePropagationVersionTolerance' ./internal/blockserver
	$(GO) test -race -run 'TestBeatHealthRollup|TestClusterRollupGauges|TestControlTraceContext' ./internal/master
	./scripts/obscheck.sh
