// Command carouselmaster runs the Carousel control plane: a daemon that
// tracks blockserver membership through heartbeats, owns the file→server
// placement map, detects failures through an Alive → Suspect → Dead state
// machine, and supervises automatic repair — scheduling RecoverServer
// passes onto newcomers when a member dies and periodic Scrub sweeps in
// between, through a checkpointed task queue that survives master
// restarts via a crash-safe journal under -data.
//
// A minimal self-healing cluster:
//
//	carouselmaster -addr 127.0.0.1:7060 -data /var/lib/carousel/master &
//	for i in $(seq 0 11); do
//	  blockserverd -addr 127.0.0.1:70$((70+i)) -master 127.0.0.1:7060 &
//	done
//	carouselctl cluster status -master 127.0.0.1:7060
//
// Kill any blockserver and watch the master walk it Alive → Suspect →
// Dead, then rebuild its blocks onto the least-loaded survivor — no
// operator repair call involved.
//
// Usage:
//
//	carouselmaster [-addr 127.0.0.1:7060] [-data DIR] [-obs-addr 127.0.0.1:7061]
//	               [-n 12 -k 6 -d 10 -p 12]
//	               [-heartbeat 2s] [-miss 3] [-grace 12s] [-hold 12s]
//	               [-scrub-every 0] [-recover-bw 0] [-recover-cap 2] [-scrub-cap 1]
package main

import (
	"flag"
	"os"
	"os/signal"
	"syscall"
	"time"

	"carousel/internal/carousel"
	"carousel/internal/master"
	"carousel/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7060", "control-plane listen address")
	dataDir := flag.String("data", "", "journal + snapshot directory; empty runs in memory (no restart recovery)")
	obsAddr := flag.String("obs-addr", "", "observability HTTP address; empty disables")
	verbose := flag.Bool("v", false, "debug-level logging")
	n := flag.Int("n", 12, "total blocks per stripe")
	k := flag.Int("k", 6, "data blocks' worth of content per stripe")
	d := flag.Int("d", 10, "repair helpers")
	p := flag.Int("p", 12, "data parallelism")
	heartbeat := flag.Duration("heartbeat", 2*time.Second, "heartbeat interval acked to daemons")
	miss := flag.Int("miss", 3, "missed intervals before Alive -> Suspect")
	grace := flag.Duration("grace", 0, "Suspect -> Dead grace window (default 2*miss*heartbeat)")
	hold := flag.Duration("hold", 0, "rebuild hold after Dead, doubled per recent flap (default = grace)")
	scrubEvery := flag.Duration("scrub-every", 0, "periodic scrub sweep interval; 0 disables")
	recoverBW := flag.Int64("recover-bw", 0, "per-recovery-task bandwidth budget in bytes/sec; 0 unthrottled")
	recoverCap := flag.Int("recover-cap", 2, "concurrent recovery tasks")
	scrubCap := flag.Int("scrub-cap", 1, "concurrent scrub tasks")
	flag.Parse()

	log := obs.SetDefaultLogger(*verbose)
	code, err := carousel.New(*n, *k, *d, *p)
	if err != nil {
		log.Error("invalid code parameters", "err", err)
		os.Exit(1)
	}
	m, err := master.New(master.Config{
		Code:              code,
		DataDir:           *dataDir,
		HeartbeatInterval: *heartbeat,
		MissLimit:         *miss,
		Grace:             *grace,
		RebuildHold:       *hold,
		ScrubInterval:     *scrubEvery,
		RecoverBandwidth:  *recoverBW,
		RecoverCap:        *recoverCap,
		ScrubCap:          *scrubCap,
		Logger:            log,
	})
	if err != nil {
		log.Error("master init failed", "err", err)
		os.Exit(1)
	}
	// The obs endpoint starts first so its bound address can be advertised
	// in the cluster status view: carouselctl trace and top discover the
	// master's /metrics and /debug/traces through it. It serves the
	// cluster_* roll-up gauges the master aggregates from heartbeats.
	if *obsAddr != "" {
		obsBound, stopObs, err := obs.Serve(*obsAddr)
		if err != nil {
			log.Error("observability endpoint failed", "addr", *obsAddr, "err", err)
			os.Exit(1)
		}
		defer stopObs()
		m.SetObsAddr(obsBound)
		log.Info("observability endpoint up", "addr", obsBound)
	}
	if err := m.Start(*addr); err != nil {
		log.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	log.Info("control plane up", "addr", m.Addr(), "data", *dataDir,
		"heartbeat", *heartbeat, "miss", *miss, "scrub_every", *scrubEvery)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Info("shutting down")
	done := make(chan error, 1)
	go func() { done <- m.Close() }()
	select {
	case err := <-done:
		if err != nil {
			log.Error("shutdown error", "err", err)
			os.Exit(1)
		}
	case <-time.After(10 * time.Second):
		log.Error("shutdown timed out")
		os.Exit(1)
	}
}
