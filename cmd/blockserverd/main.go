// Command blockserverd runs one standalone Carousel block server: an
// in-memory TCP block store that also computes repair chunks server-side.
// Twelve of these (one per block index) plus carouselctl-encoded blocks
// make a minimal deployed Carousel store; examples/tcpcluster drives the
// same flow in-process.
//
// The -obs-addr flag starts the observability endpoint: /metrics
// (Prometheus text), /debug/vars (expvar), /debug/pprof/ and /debug/traces
// (recent read/repair span trees). `carouselctl stats` scrapes a set of
// these endpoints and merges them into one cluster view.
//
// The -fault-* flags interpose the faultnet injection harness between the
// socket and the protocol, so a deployed cluster can be exercised under
// the same straggler/partition/corruption faults the test matrix uses:
//
//	blockserverd -fault-delay 250ms        # straggler: delay every write
//	blockserverd -fault-blackhole          # accept, then never respond
//	blockserverd -fault-corrupt            # flip a bit in payload writes
//	blockserverd -fault-cut-after 1048576  # drop conns after 1 MiB
//	blockserverd -fault-partition 10.0.0.7 # reject conns from a peer
//
// With -master set the daemon joins a carouselmaster control plane:
// register on startup, heartbeat (piggybacking capacity and corrupt-serve
// counters) at the master-acked interval with jittered reconnect backoff,
// and deregister on SIGINT/SIGTERM so shutdown is a clean drain instead of
// a detected failure.
//
// Usage:
//
//	blockserverd [-addr 127.0.0.1:7070] [-master 127.0.0.1:7060] [-advertise host:port] [-obs-addr 127.0.0.1:7071] [-n 12 -k 6 -d 10 -p 12] [-fault-...]
package main

import (
	"flag"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"carousel/internal/blockserver"
	"carousel/internal/carousel"
	"carousel/internal/faultnet"
	"carousel/internal/master"
	"carousel/internal/obs"
	"carousel/internal/stripecache"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	masterAddr := flag.String("master", "", "carouselmaster control-plane address; empty runs unmanaged")
	advertise := flag.String("advertise", "", "block-service address to register with the master (default: the bound listen address)")
	obsAddr := flag.String("obs-addr", "", "observability HTTP address (/metrics, /debug/vars, /debug/pprof, /debug/traces); empty disables")
	verbose := flag.Bool("v", false, "debug-level logging")
	n := flag.Int("n", 12, "total blocks per stripe")
	k := flag.Int("k", 6, "data blocks' worth of content per stripe")
	d := flag.Int("d", 10, "repair helpers")
	p := flag.Int("p", 12, "data parallelism")
	faultDelay := flag.Duration("fault-delay", 0, "inject: delay every response write (straggler)")
	faultBlackhole := flag.Bool("fault-blackhole", false, "inject: accept connections but never respond")
	faultCorrupt := flag.Bool("fault-corrupt", false, "inject: flip one bit in every payload write")
	faultCutAfter := flag.Int64("fault-cut-after", 0, "inject: cut each connection after this many bytes written")
	faultPartition := flag.String("fault-partition", "", "inject: comma-separated peer hosts whose connections are rejected")
	flag.Parse()

	log := obs.SetDefaultLogger(*verbose)
	code, err := carousel.New(*n, *k, *d, *p)
	if err != nil {
		log.Error("invalid code parameters", "err", err)
		os.Exit(1)
	}
	srv := blockserver.NewServer(code)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	policy := faultnet.Policy{
		DelayWrite:    *faultDelay,
		Blackhole:     *faultBlackhole,
		CorruptWrites: *faultCorrupt,
		CutAfterBytes: *faultCutAfter,
	}
	injected := policy != (faultnet.Policy{}) || *faultPartition != ""
	if injected {
		in := faultnet.NewInjector()
		in.SetDefault(policy)
		for _, host := range strings.Split(*faultPartition, ",") {
			if host = strings.TrimSpace(host); host != "" {
				in.SetPeer(host, faultnet.Policy{RejectConn: true})
			}
		}
		ln = in.Wrap(ln)
	}
	bound, err := srv.StartListener(ln)
	if err != nil {
		log.Error("start failed", "err", err)
		os.Exit(1)
	}
	log.Info("serving", "n", *n, "k", *k, "d", *d, "p", *p, "addr", bound)
	obsBound := ""
	if *obsAddr != "" {
		var stopObs func() error
		obsBound, stopObs, err = obs.Serve(*obsAddr)
		if err != nil {
			log.Error("observability endpoint failed", "addr", *obsAddr, "err", err)
			os.Exit(1)
		}
		defer stopObs()
		log.Info("observability endpoint up", "addr", obsBound,
			"endpoints", "/metrics /debug/vars /debug/pprof/ /debug/traces")
	}
	if injected {
		log.Warn("FAULT INJECTION ACTIVE",
			"delay", *faultDelay, "blackhole", *faultBlackhole, "corrupt", *faultCorrupt,
			"cut_after", *faultCutAfter, "partition", *faultPartition)
	}

	// With a master configured, run the membership side of the control
	// plane: register, then heartbeat with piggybacked capacity and health
	// counters, reconnecting with jittered backoff when the master is away.
	var hb *master.Heartbeater
	if *masterAddr != "" {
		adv := *advertise
		if adv == "" {
			adv = bound
		}
		hb = master.NewHeartbeater(master.HeartbeatConfig{
			Master: *masterAddr,
			Addr:   adv,
			Info: func() master.NodeInfo {
				blocks, bytes, corrupt := srv.Stats()
				p99, depth, tx := srv.ObsSummary()
				cacheHits, cacheMisses := stripecache.HitMissTotals()
				return master.NodeInfo{
					Addr: adv, Blocks: blocks, BlockBytes: bytes, CorruptServes: corrupt,
					ObsAddr:        obsBound,
					RPCP99NS:       p99,
					QueueDepth:     depth,
					BytesTx:        tx,
					ErrorBudgetPPM: obs.Default().MinErrorBudgetRemainingPPM(),
					CacheHits:      cacheHits,
					CacheMisses:    cacheMisses,
				}
			},
		})
		hb.Start()
		log.Info("heartbeating", "master", *masterAddr, "advertise", adv)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Info("shutting down")
	if hb != nil {
		// Deregister first — a clean drain: the master moves this node's
		// blocks immediately instead of waiting out the suspect window.
		hb.Stop()
		log.Info("deregistered from master")
	}
	// Close stops accepting, cancels in-flight connections, and joins
	// every handler; bound it so a wedged socket cannot hang shutdown.
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			log.Error("shutdown error", "err", err)
			os.Exit(1)
		}
	case <-time.After(10 * time.Second):
		log.Error("shutdown timed out")
		os.Exit(1)
	}
}
