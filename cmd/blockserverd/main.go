// Command blockserverd runs one standalone Carousel block server: an
// in-memory TCP block store that also computes repair chunks server-side.
// Twelve of these (one per block index) plus carouselctl-encoded blocks
// make a minimal deployed Carousel store; examples/tcpcluster drives the
// same flow in-process.
//
// Usage:
//
//	blockserverd [-addr 127.0.0.1:7070] [-n 12 -k 6 -d 10 -p 12]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"carousel/internal/blockserver"
	"carousel/internal/carousel"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	n := flag.Int("n", 12, "total blocks per stripe")
	k := flag.Int("k", 6, "data blocks' worth of content per stripe")
	d := flag.Int("d", 10, "repair helpers")
	p := flag.Int("p", 12, "data parallelism")
	flag.Parse()

	code, err := carousel.New(*n, *k, *d, *p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "blockserverd:", err)
		os.Exit(1)
	}
	srv := blockserver.NewServer(code)
	bound, err := srv.Start(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "blockserverd:", err)
		os.Exit(1)
	}
	fmt.Printf("blockserverd: serving carousel(%d,%d,%d,%d) blocks on %s\n", *n, *k, *d, *p, bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("blockserverd: shutting down")
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "blockserverd:", err)
		os.Exit(1)
	}
}
