// Command blockserverd runs one standalone Carousel block server: an
// in-memory TCP block store that also computes repair chunks server-side.
// Twelve of these (one per block index) plus carouselctl-encoded blocks
// make a minimal deployed Carousel store; examples/tcpcluster drives the
// same flow in-process.
//
// The -fault-* flags interpose the faultnet injection harness between the
// socket and the protocol, so a deployed cluster can be exercised under
// the same straggler/partition/corruption faults the test matrix uses:
//
//	blockserverd -fault-delay 250ms        # straggler: delay every write
//	blockserverd -fault-blackhole          # accept, then never respond
//	blockserverd -fault-corrupt            # flip a bit in payload writes
//	blockserverd -fault-cut-after 1048576  # drop conns after 1 MiB
//	blockserverd -fault-partition 10.0.0.7 # reject conns from a peer
//
// Usage:
//
//	blockserverd [-addr 127.0.0.1:7070] [-n 12 -k 6 -d 10 -p 12] [-fault-...]
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"carousel/internal/blockserver"
	"carousel/internal/carousel"
	"carousel/internal/faultnet"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	n := flag.Int("n", 12, "total blocks per stripe")
	k := flag.Int("k", 6, "data blocks' worth of content per stripe")
	d := flag.Int("d", 10, "repair helpers")
	p := flag.Int("p", 12, "data parallelism")
	faultDelay := flag.Duration("fault-delay", 0, "inject: delay every response write (straggler)")
	faultBlackhole := flag.Bool("fault-blackhole", false, "inject: accept connections but never respond")
	faultCorrupt := flag.Bool("fault-corrupt", false, "inject: flip one bit in every payload write")
	faultCutAfter := flag.Int64("fault-cut-after", 0, "inject: cut each connection after this many bytes written")
	faultPartition := flag.String("fault-partition", "", "inject: comma-separated peer hosts whose connections are rejected")
	flag.Parse()

	code, err := carousel.New(*n, *k, *d, *p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "blockserverd:", err)
		os.Exit(1)
	}
	srv := blockserver.NewServer(code)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "blockserverd:", err)
		os.Exit(1)
	}
	policy := faultnet.Policy{
		DelayWrite:    *faultDelay,
		Blackhole:     *faultBlackhole,
		CorruptWrites: *faultCorrupt,
		CutAfterBytes: *faultCutAfter,
	}
	injected := policy != (faultnet.Policy{}) || *faultPartition != ""
	if injected {
		in := faultnet.NewInjector()
		in.SetDefault(policy)
		for _, host := range strings.Split(*faultPartition, ",") {
			if host = strings.TrimSpace(host); host != "" {
				in.SetPeer(host, faultnet.Policy{RejectConn: true})
			}
		}
		ln = in.Wrap(ln)
	}
	bound, err := srv.StartListener(ln)
	if err != nil {
		fmt.Fprintln(os.Stderr, "blockserverd:", err)
		os.Exit(1)
	}
	fmt.Printf("blockserverd: serving carousel(%d,%d,%d,%d) blocks on %s\n", *n, *k, *d, *p, bound)
	if injected {
		fmt.Printf("blockserverd: FAULT INJECTION ACTIVE: delay=%v blackhole=%v corrupt=%v cut-after=%d partition=%q\n",
			*faultDelay, *faultBlackhole, *faultCorrupt, *faultCutAfter, *faultPartition)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("blockserverd: shutting down")
	// Close stops accepting, cancels in-flight connections, and joins
	// every handler; bound it so a wedged socket cannot hang shutdown.
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, "blockserverd:", err)
			os.Exit(1)
		}
	case <-time.After(10 * time.Second):
		fmt.Fprintln(os.Stderr, "blockserverd: shutdown timed out")
		os.Exit(1)
	}
}
