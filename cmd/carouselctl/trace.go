package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"carousel/internal/master"
	"carousel/internal/obs"
)

// cmdTrace collects one trace from a set of /debug/traces endpoints and
// prints the stitched cross-node span tree: the client's stripe/fetch spans
// with the server-side fetch/verify/decode spans nested under them. The
// endpoints come from -addrs, or are discovered through the master's
// cluster view (-master), which includes the master's own obs endpoint so
// control-plane spans stitch in too.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	addrs := fs.String("addrs", "", "comma-separated observability addresses (host:port) to collect from")
	masterAddr := fs.String("master", "", "discover observability addresses from this carouselmaster")
	timeout := fs.Duration("timeout", 5*time.Second, "overall collection timeout")
	fs.Parse(args)
	if fs.NArg() != 1 || (*addrs == "" && *masterAddr == "") {
		usage()
	}
	trace, err := strconv.ParseUint(fs.Arg(0), 0, 64)
	if err != nil || trace == 0 {
		return fmt.Errorf("trace ID %q is not a nonzero integer", fs.Arg(0))
	}

	endpoints := splitAddrs(*addrs)
	if *masterAddr != "" {
		c := master.NewClient(*masterAddr, &master.ClientOptions{DialTimeout: *timeout, IOTimeout: *timeout})
		cs, err := c.Status()
		c.Close()
		if err != nil {
			return fmt.Errorf("master %s: %w", *masterAddr, err)
		}
		endpoints = append(endpoints, cs.ObsAddrs()...)
	}
	if len(endpoints) == 0 {
		return fmt.Errorf("no observability endpoints: none given with -addrs and the master reports none")
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	client := &http.Client{Timeout: *timeout}
	spans, errs := obs.CollectTrace(ctx, client, endpoints, trace)
	for addr, cerr := range errs {
		fmt.Fprintf(os.Stderr, "  %-28s ERROR: %v\n", addr, cerr)
	}
	if len(spans) == 0 {
		return fmt.Errorf("trace %d not found on %d endpoint(s)", trace, len(endpoints))
	}
	nodes := map[string]bool{}
	for _, s := range spans {
		if n, ok := s.Attr("node").(string); ok {
			nodes[n] = true
		}
	}
	fmt.Printf("trace %d: %d spans from %d node(s)\n\n", trace, len(spans), len(nodes))
	fmt.Print(obs.TreeString(spans))
	if len(errs) > 0 {
		return fmt.Errorf("%w: %d of %d endpoint(s) unreachable", errPartialStats, len(errs), len(endpoints))
	}
	return nil
}

// cmdTop polls the master's cluster view and renders a refreshing per-node
// health table: the heartbeat-piggybacked throughput, windowed RPC p99,
// queue depth, remaining SLO error budget, and stripe-cache hit rate, plus
// the cluster roll-up line the master's cluster_* gauges export.
func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	masterAddr := fs.String("master", "127.0.0.1:7060", "carouselmaster control-plane address")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	count := fs.Int("count", 0, "number of refreshes (0 = until interrupted)")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request timeout")
	fs.Parse(args)
	if fs.NArg() != 0 {
		usage()
	}
	c := master.NewClient(*masterAddr, &master.ClientOptions{DialTimeout: *timeout, IOTimeout: *timeout})
	defer c.Close()
	for i := 0; ; i++ {
		cs, err := c.Status()
		if err != nil {
			return fmt.Errorf("master %s: %w", *masterAddr, err)
		}
		if *count != 1 && i > 0 {
			fmt.Print("\x1b[H\x1b[2J") // home + clear: refresh in place
		}
		printTop(*masterAddr, cs)
		if *count > 0 && i+1 >= *count {
			return nil
		}
		time.Sleep(*interval)
	}
}

// printTop renders one top frame.
func printTop(masterAddr string, cs *master.ClusterStatus) {
	fmt.Printf("cluster @ %s  %s  files %d  tasks %d pending / %d running\n",
		masterAddr, time.Now().Format("15:04:05"), cs.Files, cs.Pending, cs.Running)
	if len(cs.Members) == 0 {
		fmt.Println("no members registered")
		return
	}
	members := append([]master.MemberStatus(nil), cs.Members...)
	sort.Slice(members, func(i, j int) bool { return members[i].Addr < members[j].Addr })
	fmt.Printf("\n%-24s %-8s %10s %10s %7s %10s %8s %8s\n",
		"MEMBER", "STATE", "TX RATE", "RPC P99", "QUEUE", "BUDGET", "CORRUPT", "CACHE")
	var rollup master.Rollup
	rollup.ErrorBudgetMinPPM = 1_000_000
	alive := 0
	for _, m := range members {
		budget := "-"
		p99 := "-"
		rate := "-"
		if m.ObsAddr != "" {
			budget = fmt.Sprintf("%.1f%%", float64(m.ErrorBudgetPPM)/10_000)
			p99 = formatNS(m.RPCP99NS)
			rate = formatRate(m.TxRateBps)
		}
		fmt.Printf("%-24s %-8s %10s %10s %7d %10s %8d %8s\n",
			m.Addr, m.State, rate, p99, m.QueueDepth, budget, m.CorruptServes,
			formatHitRate(m.CacheHits, m.CacheMisses))
		if m.State != "alive" {
			continue
		}
		alive++
		rollup.Blocks += m.Blocks
		rollup.BlockBytes += m.BlockBytes
		rollup.CorruptServes += m.CorruptServes
		rollup.CacheHits += m.CacheHits
		rollup.CacheMisses += m.CacheMisses
		if m.ObsAddr == "" {
			continue
		}
		rollup.QueueDepth += m.QueueDepth
		rollup.TxRateBps += m.TxRateBps
		if m.RPCP99NS > rollup.RPCP99NS {
			rollup.RPCP99NS = m.RPCP99NS
		}
		if m.ErrorBudgetPPM < rollup.ErrorBudgetMinPPM {
			rollup.ErrorBudgetMinPPM = m.ErrorBudgetPPM
		}
	}
	fmt.Printf("\ncluster: %d alive, %d blocks (%s), tx %s, worst p99 %s, queue %d, min budget %.1f%%, cache %s\n",
		alive, rollup.Blocks, formatBytes(rollup.BlockBytes), formatRate(rollup.TxRateBps),
		formatNS(rollup.RPCP99NS), rollup.QueueDepth, float64(rollup.ErrorBudgetMinPPM)/10_000,
		formatHitRate(rollup.CacheHits, rollup.CacheMisses))
}

// formatHitRate renders a stripe-cache hit rate, or "-" for a node that has
// reported no cache activity at all (no cache configured, or nothing read).
func formatHitRate(hits, misses int64) string {
	if hits+misses == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(hits+misses))
}

// splitAddrs parses a comma-separated address list, dropping blanks.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// formatNS renders nanoseconds human-readably.
func formatNS(ns int64) string {
	return time.Duration(ns).Round(10 * time.Microsecond).String()
}

// formatRate renders bytes/sec.
func formatRate(bps int64) string {
	return formatBytes(bps) + "/s"
}

// formatBytes renders a byte count with a binary-prefix unit.
func formatBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
