// Command carouselctl encodes, inspects, decodes, and repairs files on the
// local file system with a Carousel code, the on-disk analog of the
// paper's HDFS integration.
//
// Usage:
//
//	carouselctl encode [-n 12 -k 6 -d 10 -p 12] <input-file> <out-dir>
//	carouselctl info   <out-dir>
//	carouselctl decode <out-dir> <output-file>
//	carouselctl repair -block <i> <out-dir>
//	carouselctl stats  -addrs host:port,host:port,...
//	carouselctl trace  [-addrs ...] [-master host:port] <trace-id>
//	carouselctl top    [-master host:port] [-interval 2s] [-count N]
//	carouselctl cluster status [-master host:port]
//	carouselctl cluster drain  [-master host:port] <member-addr>
//	carouselctl cluster put    [-master host:port] [-name stored-name] <file>
//	carouselctl cluster get    [-master host:port] [-count N] [-cache MiB] <stored-name> <out-file>
//
// encode writes out-dir/block_NNN.bin plus a manifest.json recording the
// code parameters and the original size. decode tolerates up to n-k
// missing or deleted block files (it uses the Section VII parallel read,
// falling back to an any-k decode). repair regenerates one missing block
// from d surviving blocks, moving only the optimal amount of data off the
// helper blocks. stats scrapes the -obs-addr endpoints of a set of
// blockserverd nodes and prints merged cluster-wide metrics.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"carousel/internal/blockserver"
	"carousel/internal/carousel"
	"carousel/internal/obs"
	"carousel/internal/reedsolomon"
)

// manifest records the parameters of an encoded directory.
type manifest struct {
	N, K, D, P int
	BlockSize  int
	FileSize   int
	SourceName string
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "encode":
		err = cmdEncode(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "decode":
		err = cmdDecode(os.Args[2:])
	case "repair":
		err = cmdRepair(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "top":
		err = cmdTop(os.Args[2:])
	case "cluster":
		err = cmdCluster(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		obs.SetDefaultLogger(false).Error("command failed", "cmd", os.Args[1], "err", err)
		os.Exit(exitCode(err))
	}
}

// Exit codes, distinguishable by callers and scripts. Usage errors exit 2
// (flag package convention); sentinel failures from the block path get
// their own codes so a wrapper can tell "file is gone" from "file is
// rotting" from "cluster is slow".
const (
	exitFailure         = 1
	exitUsage           = 2
	exitNotFound        = 3
	exitCorrupt         = 4
	exitTimeout         = 5
	exitTooFewSurvivors = 6
	exitPartialStats    = 7
)

// errPartialStats marks a stats scrape that merged some nodes but not all:
// the output is usable, the cluster view is incomplete.
var errPartialStats = errors.New("partial stats")

// exitCode maps an error to the process exit code via errors.Is, so
// wrapped and joined errors classify the same as bare sentinels. Order
// matters: corruption and survivor shortfalls are more specific (and more
// actionable) than the timeouts that often accompany them.
func exitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, blockserver.ErrCorrupt):
		return exitCorrupt
	case errors.Is(err, blockserver.ErrTooFewSurvivors),
		errors.Is(err, carousel.ErrTooFewBlocks):
		return exitTooFewSurvivors
	case errors.Is(err, blockserver.ErrNotFound), errors.Is(err, os.ErrNotExist):
		return exitNotFound
	case errors.Is(err, blockserver.ErrTimeout):
		return exitTimeout
	case errors.Is(err, errPartialStats):
		return exitPartialStats
	default:
		return exitFailure
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  carouselctl encode [-n 12 -k 6 -d 10 -p 12] <input-file> <out-dir>
  carouselctl info   <out-dir>
  carouselctl decode <out-dir> <output-file>
  carouselctl repair -block <i> <out-dir>
  carouselctl verify <out-dir>
  carouselctl stats  -addrs host:port,host:port,... [-raw]
  carouselctl trace  [-addrs host:port,...] [-master host:port] <trace-id>
  carouselctl top    [-master host:port] [-interval 2s] [-count N]
  carouselctl cluster status [-master host:port]
  carouselctl cluster drain  [-master host:port] <member-addr>
  carouselctl cluster put    [-master host:port] [-name stored-name] <file>
  carouselctl cluster get    [-master host:port] [-count N] [-cache MiB] <stored-name> <out-file>`)
	os.Exit(2)
}

// cmdVerify decodes from the available blocks, re-encodes, and reports any
// block whose on-disk content disagrees — detecting both bit rot and
// mismatched block files.
func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	dir := fs.Arg(0)
	m, code, err := loadManifest(dir)
	if err != nil {
		return err
	}
	blocks, present, err := loadBlocks(dir, m)
	if err != nil {
		return err
	}
	var avail []int
	for i, ok := range present {
		if ok {
			avail = append(avail, i)
		}
	}
	if len(avail) < m.K {
		return fmt.Errorf("%w: only %d blocks present, need %d to verify",
			blockserver.ErrTooFewSurvivors, len(avail), m.K)
	}
	// A corrupt block poisons any decode that uses it, so try k-subsets in
	// rotation and keep the reference that disagrees with the fewest
	// blocks: the subset avoiding all corruption wins whenever at most
	// n-k blocks are bad.
	best := -1
	var bestExpect [][]byte
	for rot := 0; rot < len(avail); rot++ {
		subset := make([][]byte, m.N)
		for j := 0; j < m.K; j++ {
			idx := avail[(rot+j)%len(avail)]
			subset[idx] = blocks[idx]
		}
		shards, err := code.Decode(subset)
		if err != nil {
			continue
		}
		expect, err := code.Encode(shards)
		if err != nil {
			return err
		}
		bad := 0
		for _, i := range avail {
			if !bytesEqual(blocks[i], expect[i]) {
				bad++
			}
		}
		if best < 0 || bad < best {
			best, bestExpect = bad, expect
			if bad == 0 {
				break
			}
		}
	}
	if best < 0 {
		return fmt.Errorf("%w: no decodable k-subset found", blockserver.ErrCorrupt)
	}
	for i, ok := range present {
		switch {
		case !ok:
			fmt.Printf("block %2d: missing\n", i)
		case !bytesEqual(blocks[i], bestExpect[i]):
			fmt.Printf("block %2d: CORRUPT\n", i)
		}
	}
	if best > 0 {
		return fmt.Errorf("%w: %d corrupt block(s); regenerate them with `carouselctl repair`",
			blockserver.ErrCorrupt, best)
	}
	fmt.Println("all present blocks verify")
	return nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func blockPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("block_%03d.bin", i))
}

func loadManifest(dir string) (*manifest, *carousel.Code, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, nil, fmt.Errorf("reading manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, nil, fmt.Errorf("parsing manifest: %w", err)
	}
	code, err := carousel.New(m.N, m.K, m.D, m.P)
	if err != nil {
		return nil, nil, err
	}
	return &m, code, nil
}

// loadBlocks reads the available block files; missing files become nil.
func loadBlocks(dir string, m *manifest) ([][]byte, []bool, error) {
	blocks := make([][]byte, m.N)
	present := make([]bool, m.N)
	for i := 0; i < m.N; i++ {
		b, err := os.ReadFile(blockPath(dir, i))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, nil, fmt.Errorf("reading block %d: %w", i, err)
		}
		if len(b) != m.BlockSize {
			return nil, nil, fmt.Errorf("block %d has %d bytes, manifest says %d", i, len(b), m.BlockSize)
		}
		blocks[i] = b
		present[i] = true
	}
	return blocks, present, nil
}

func cmdEncode(args []string) error {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	n := fs.Int("n", 12, "total blocks per stripe")
	k := fs.Int("k", 6, "data blocks' worth of content per stripe")
	d := fs.Int("d", 10, "repair helpers (d=k for an RS base, d>=2k-2 for MSR)")
	p := fs.Int("p", 12, "data parallelism: blocks carrying original data")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	input, outDir := fs.Arg(0), fs.Arg(1)
	code, err := carousel.New(*n, *k, *d, *p)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(input)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("%s is empty", input)
	}
	shards, blockSize, err := reedsolomon.Split(data, *k, code.BlockAlign())
	if err != nil {
		return err
	}
	blocks, err := code.Encode(shards)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	for i, b := range blocks {
		if err := os.WriteFile(blockPath(outDir, i), b, 0o644); err != nil {
			return err
		}
	}
	m := manifest{N: *n, K: *k, D: *d, P: *p, BlockSize: blockSize,
		FileSize: len(data), SourceName: filepath.Base(input)}
	raw, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(outDir, "manifest.json"), raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("encoded %s (%d bytes) into %d blocks of %d bytes under %s\n",
		input, len(data), *n, blockSize, outDir)
	fmt.Printf("data is embedded in the first %d blocks; any %d blocks decode; repair contacts %d helpers\n",
		*p, *k, *d)
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	dir := fs.Arg(0)
	m, code, err := loadManifest(dir)
	if err != nil {
		return err
	}
	_, present, err := loadBlocks(dir, m)
	if err != nil {
		return err
	}
	fmt.Printf("carousel(%d,%d,%d,%d): source %s, %d bytes, block size %d\n",
		m.N, m.K, m.D, m.P, m.SourceName, m.FileSize, m.BlockSize)
	fmt.Printf("repair traffic per lost block: %d bytes (%.2f blocks; RS would move %d)\n",
		code.ReconstructionTraffic(m.BlockSize),
		float64(code.ReconstructionTraffic(m.BlockSize))/float64(m.BlockSize),
		m.K*m.BlockSize)
	missing := 0
	for i, ok := range present {
		state := "present"
		if !ok {
			state = "MISSING"
			missing++
		}
		lo, hi := code.DataRange(i, m.BlockSize)
		if hi > lo {
			fmt.Printf("  block %2d: %s, holds file bytes [%d, %d)\n", i, state, lo, hi)
		} else {
			fmt.Printf("  block %2d: %s, parity only\n", i, state)
		}
	}
	switch {
	case missing == 0:
		fmt.Println("all blocks present")
	case missing <= m.N-m.K:
		fmt.Printf("%d block(s) missing; the file is still fully recoverable\n", missing)
	default:
		fmt.Printf("%d block(s) missing; DATA LOSS (more than n-k = %d)\n", missing, m.N-m.K)
	}
	return nil
}

func cmdDecode(args []string) error {
	fs := flag.NewFlagSet("decode", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	dir, output := fs.Arg(0), fs.Arg(1)
	m, code, err := loadManifest(dir)
	if err != nil {
		return err
	}
	blocks, _, err := loadBlocks(dir, m)
	if err != nil {
		return err
	}
	data, err := code.ParallelRead(blocks)
	if err != nil {
		return err
	}
	if err := os.WriteFile(output, data[:m.FileSize], 0o644); err != nil {
		return err
	}
	fmt.Printf("decoded %d bytes to %s\n", m.FileSize, output)
	return nil
}

func cmdRepair(args []string) error {
	fs := flag.NewFlagSet("repair", flag.ExitOnError)
	idx := fs.Int("block", -1, "index of the block to regenerate")
	fs.Parse(args)
	if fs.NArg() != 1 || *idx < 0 {
		usage()
	}
	dir := fs.Arg(0)
	m, code, err := loadManifest(dir)
	if err != nil {
		return err
	}
	if *idx >= m.N {
		return fmt.Errorf("block %d out of range [0,%d)", *idx, m.N)
	}
	blocks, present, err := loadBlocks(dir, m)
	if err != nil {
		return err
	}
	helpers := make([]int, 0, m.D)
	for i := 0; i < m.N && len(helpers) < m.D; i++ {
		if i != *idx && present[i] {
			helpers = append(helpers, i)
		}
	}
	if len(helpers) < m.D {
		return fmt.Errorf("%w: only %d surviving blocks, need d=%d helpers",
			blockserver.ErrTooFewSurvivors, len(helpers), m.D)
	}
	chunks := make([][]byte, len(helpers))
	traffic := 0
	for i, h := range helpers {
		ch, err := code.HelperChunk(h, *idx, blocks[h])
		if err != nil {
			return err
		}
		chunks[i] = ch
		traffic += len(ch)
	}
	block, err := code.RepairBlock(*idx, helpers, chunks)
	if err != nil {
		return err
	}
	if err := os.WriteFile(blockPath(dir, *idx), block, 0o644); err != nil {
		return err
	}
	fmt.Printf("regenerated block %d from %d helpers, moving %d bytes (%.2f blocks; an RS repair moves %d)\n",
		*idx, len(helpers), traffic, float64(traffic)/float64(m.BlockSize), m.K*m.BlockSize)
	return nil
}
