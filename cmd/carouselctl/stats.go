package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"carousel/internal/obs"
)

// cmdStats scrapes the /metrics endpoint of every listed node, merges the
// snapshots into one cluster-wide view, and pretty-prints it grouped by
// subsystem — the operational companion of the paper's read/repair time
// decomposition: store_* shows which path served reads and what repairs
// cost, blockserver_* the RPC traffic underneath, codeplan_*/workpool_*
// the decode compute.
func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	addrs := fs.String("addrs", "", "comma-separated observability addresses (host:port) to scrape")
	raw := fs.Bool("raw", false, "print the merged snapshot as /metrics exposition text instead of the summary")
	timeout := fs.Duration("timeout", 5*time.Second, "per-scrape HTTP timeout")
	fs.Parse(args)
	if *addrs == "" || fs.NArg() != 0 {
		usage()
	}
	merged := obs.NewSnapshot()
	client := &http.Client{Timeout: *timeout}
	// An unreachable node degrades the scrape instead of failing it: the
	// reachable nodes still merge, every node gets a status row, and the
	// distinct exit code tells scripts the view is partial.
	type nodeResult struct {
		addr string
		err  error
	}
	var results []nodeResult
	scraped, failed := 0, 0
	for _, a := range strings.Split(*addrs, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		snap, err := scrape(client, a)
		if err != nil {
			results = append(results, nodeResult{a, err})
			failed++
			continue
		}
		merged.Merge(snap)
		results = append(results, nodeResult{a, nil})
		scraped++
	}
	if scraped == 0 && failed == 0 {
		usage()
	}
	if scraped == 0 {
		for _, r := range results {
			fmt.Fprintf(os.Stderr, "  %-28s ERROR: %v\n", r.addr, r.err)
		}
		return fmt.Errorf("all %d node(s) unreachable", failed)
	}
	if *raw {
		if err := obs.WriteText(os.Stdout, merged); err != nil {
			return err
		}
	} else {
		printStats(merged, scraped)
		fmt.Printf("\nnodes\n")
		for _, r := range results {
			if r.err != nil {
				fmt.Printf("  %-28s ERROR: %v\n", r.addr, r.err)
			} else {
				fmt.Printf("  %-28s ok\n", r.addr)
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("%w: %d of %d node(s) unreachable", errPartialStats, failed, scraped+failed)
	}
	return nil
}

// scrape fetches and parses one node's /metrics page.
func scrape(client *http.Client, addr string) (*obs.Snapshot, error) {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return obs.ParseText(resp.Body)
}

// group buckets a full metric name by its subsystem prefix.
func group(full string) string {
	fam := obs.Family(full)
	if i := strings.IndexByte(fam, '_'); i > 0 {
		return fam[:i]
	}
	return fam
}

// printStats renders the merged snapshot grouped by subsystem, scalars
// first, histograms with count/mean/tail quantiles.
func printStats(s *obs.Snapshot, nodes int) {
	fmt.Printf("cluster stats from %d node(s)\n", nodes)
	type scalar struct {
		name string
		v    int64
	}
	groups := map[string][]scalar{}
	for name, v := range s.Counters {
		g := group(name)
		groups[g] = append(groups[g], scalar{name, v})
	}
	for name, v := range s.Gauges {
		g := group(name)
		groups[g] = append(groups[g], scalar{name, v})
	}
	histGroups := map[string][]string{}
	for name := range s.Histograms {
		g := group(name)
		histGroups[g] = append(histGroups[g], name)
	}
	names := make([]string, 0, len(groups))
	seen := map[string]bool{}
	for g := range groups {
		if !seen[g] {
			names = append(names, g)
			seen[g] = true
		}
	}
	for g := range histGroups {
		if !seen[g] {
			names = append(names, g)
			seen[g] = true
		}
	}
	sort.Strings(names)
	for _, g := range names {
		fmt.Printf("\n%s\n", g)
		sc := groups[g]
		sort.Slice(sc, func(i, j int) bool { return sc[i].name < sc[j].name })
		for _, m := range sc {
			fmt.Printf("  %-52s %s\n", m.name, obs.FormatValue(obs.Family(m.name), m.v))
		}
		hs := histGroups[g]
		sort.Strings(hs)
		for _, name := range hs {
			h := s.Histograms[name]
			fam := obs.Family(name)
			fmt.Printf("  %-52s count=%d mean=%s p50=%s p99=%s\n",
				name, h.Count,
				obs.FormatValue(fam, int64(h.Mean())),
				obs.FormatValue(fam, h.Quantile(0.50)),
				obs.FormatValue(fam, h.Quantile(0.99)))
		}
	}
}
