package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"carousel/internal/blockserver"
	"carousel/internal/carousel"
	"carousel/internal/master"
)

// cmdCluster talks to a carouselmaster control plane: status prints the
// membership table (state machine position, capacity, flap history) and
// the repair task queue; drain asks the master to move a member's blocks
// off ahead of maintenance; put/get store and fetch files through
// master-owned placements (put with no explicit layout lets the master
// pick the emptiest alive servers).
func cmdCluster(args []string) error {
	if len(args) < 1 {
		usage()
	}
	switch args[0] {
	case "status":
		return cmdClusterStatus(args[1:])
	case "drain":
		return cmdClusterDrain(args[1:])
	case "put":
		return cmdClusterPut(args[1:])
	case "get":
		return cmdClusterGet(args[1:])
	}
	usage()
	return nil
}

// clusterCode builds the code from the shared -n/-k/-d/-p flags; the
// parameters must match the master's (both default to the paper's
// 12/6/10/12).
func clusterCode(n, k, d, p int) (*carousel.Code, error) {
	code, err := carousel.New(n, k, d, p)
	if err != nil {
		return nil, fmt.Errorf("code parameters: %w", err)
	}
	return code, nil
}

func cmdClusterPut(args []string) error {
	fs := flag.NewFlagSet("cluster put", flag.ExitOnError)
	masterAddr := fs.String("master", "127.0.0.1:7060", "carouselmaster control-plane address")
	timeout := fs.Duration("timeout", time.Minute, "overall timeout")
	name := fs.String("name", "", "stored file name (default: the local file's base name)")
	n := fs.Int("n", 12, "total blocks per stripe")
	k := fs.Int("k", 6, "data blocks' worth of content per stripe")
	d := fs.Int("d", 10, "repair helpers")
	p := fs.Int("p", 12, "data parallelism")
	block := fs.Int("block", 0, "block size in bytes (default: 4096 coding units)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	path := fs.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	code, err := clusterCode(*n, *k, *d, *p)
	if err != nil {
		return err
	}
	blockSize := *block
	if blockSize == 0 {
		blockSize = code.BlockAlign() * 4096
	}
	fileName := *name
	if fileName == "" {
		fileName = filepath.Base(path)
	}
	c := master.NewClient(*masterAddr, &master.ClientOptions{DialTimeout: *timeout, IOTimeout: *timeout})
	defer c.Close()
	rep, err := c.Place(master.PlaceRequest{Name: fileName, Size: len(data), BlockSize: blockSize})
	if err != nil {
		return fmt.Errorf("master %s: %w", *masterAddr, err)
	}
	if rep.Size != len(data) {
		return fmt.Errorf("%q is already placed with size %d; this file is %d bytes", fileName, rep.Size, len(data))
	}
	st, err := blockserver.NewStore(code, rep.Addrs, rep.BlockSize)
	if err != nil {
		return err
	}
	defer st.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if _, err := st.WriteFile(ctx, fileName, data); err != nil {
		return fmt.Errorf("writing %q: %w", fileName, err)
	}
	fmt.Printf("put %s: %d bytes across %d servers (block %d)\n", fileName, len(data), len(rep.Addrs), rep.BlockSize)
	return nil
}

func cmdClusterGet(args []string) error {
	fs := flag.NewFlagSet("cluster get", flag.ExitOnError)
	masterAddr := fs.String("master", "127.0.0.1:7060", "carouselmaster control-plane address")
	timeout := fs.Duration("timeout", time.Minute, "overall timeout")
	n := fs.Int("n", 12, "total blocks per stripe")
	k := fs.Int("k", 6, "data blocks' worth of content per stripe")
	d := fs.Int("d", 10, "repair helpers")
	p := fs.Int("p", 12, "data parallelism")
	count := fs.Int("count", 1, "read the file this many times (re-reads exercise the stripe cache)")
	cacheMiB := fs.Int("cache", 0, "stripe-cache budget in MiB (0 disables caching)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	fileName, outPath := fs.Arg(0), fs.Arg(1)
	code, err := clusterCode(*n, *k, *d, *p)
	if err != nil {
		return err
	}
	c := master.NewClient(*masterAddr, &master.ClientOptions{DialTimeout: *timeout, IOTimeout: *timeout})
	defer c.Close()
	rep, err := c.Place(master.PlaceRequest{Name: fileName})
	if err != nil {
		return fmt.Errorf("master %s: %w", *masterAddr, err)
	}
	var opts []blockserver.StoreOption
	if *cacheMiB > 0 {
		opts = append(opts, blockserver.WithStripeCache(int64(*cacheMiB)<<20))
	}
	st, err := blockserver.NewStore(code, rep.Addrs, rep.BlockSize, opts...)
	if err != nil {
		return err
	}
	defer st.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if *count < 1 {
		*count = 1
	}
	var data []byte
	var stats *blockserver.ReadStats
	cacheHits := 0
	for i := 0; i < *count; i++ {
		data, stats, err = st.ReadFile(ctx, fileName, rep.Size)
		if err != nil {
			return fmt.Errorf("reading %q (pass %d of %d): %w", fileName, i+1, *count, err)
		}
		cacheHits += stats.CacheHits
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("got %s: %d bytes -> %s (%d stripes parallel, %d fallback)\n",
		fileName, len(data), outPath, stats.StripesParallel, stats.StripesFallback)
	if *cacheMiB > 0 {
		cst := st.Cache().Stats()
		fmt.Printf("cache: %d stripe hits over %d read(s), %s resident, %d inserts, %d evictions\n",
			cacheHits, *count, formatBytes(cst.Bytes), cst.Inserts, cst.Evictions)
	}
	fmt.Printf("trace %d (carouselctl trace -master %s %d)\n", stats.TraceID, *masterAddr, stats.TraceID)
	return nil
}

func cmdClusterStatus(args []string) error {
	fs := flag.NewFlagSet("cluster status", flag.ExitOnError)
	masterAddr := fs.String("master", "127.0.0.1:7060", "carouselmaster control-plane address")
	timeout := fs.Duration("timeout", 5*time.Second, "request timeout")
	fs.Parse(args)
	if fs.NArg() != 0 {
		usage()
	}
	c := master.NewClient(*masterAddr, &master.ClientOptions{DialTimeout: *timeout, IOTimeout: *timeout})
	defer c.Close()
	cs, err := c.Status()
	if err != nil {
		return fmt.Errorf("master %s: %w", *masterAddr, err)
	}
	fmt.Printf("master %s  epoch %s  files %d  tasks %d pending / %d running\n",
		*masterAddr, time.Unix(0, cs.Epoch).Format(time.RFC3339), cs.Files, cs.Pending, cs.Running)
	if len(cs.Members) == 0 {
		fmt.Println("no members registered")
	} else {
		fmt.Printf("\n%-24s %-8s %12s %8s %14s %8s %6s\n",
			"MEMBER", "STATE", "LAST BEAT", "BLOCKS", "BYTES", "CORRUPT", "FLAPS")
		members := append([]master.MemberStatus(nil), cs.Members...)
		sort.Slice(members, func(i, j int) bool { return members[i].Addr < members[j].Addr })
		for _, m := range members {
			fmt.Printf("%-24s %-8s %11dms %8d %14d %8d %6d\n",
				m.Addr, m.State, m.LastBeatAgoMS, m.Blocks, m.BlockBytes, m.CorruptServes, m.Flaps)
		}
	}
	if len(cs.Tasks) > 0 {
		fmt.Printf("\n%-6s %-8s %-8s %-24s %12s %10s  %s\n",
			"TASK", "CLASS", "STATE", "SERVER", "CHECKPOINT", "REPAIRED", "ERROR")
		for _, t := range cs.Tasks {
			fmt.Printf("%-6d %-8s %-8s %-24s %6d/%-5d %10d  %s\n",
				t.ID, t.Class, t.State, t.Server, t.Checkpoint, t.Items, t.BlocksRepaired, t.Err)
		}
	}
	return nil
}

func cmdClusterDrain(args []string) error {
	fs := flag.NewFlagSet("cluster drain", flag.ExitOnError)
	masterAddr := fs.String("master", "127.0.0.1:7060", "carouselmaster control-plane address")
	timeout := fs.Duration("timeout", 5*time.Second, "request timeout")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	addr := fs.Arg(0)
	c := master.NewClient(*masterAddr, &master.ClientOptions{DialTimeout: *timeout, IOTimeout: *timeout})
	defer c.Close()
	rep, err := c.Drain(addr)
	if err != nil {
		return fmt.Errorf("master %s: %w", *masterAddr, err)
	}
	fmt.Printf("draining %s: %d file(s) scheduled to move\n", addr, rep.Files)
	return nil
}
