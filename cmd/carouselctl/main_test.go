package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// writeInput creates a temporary input file and returns its path plus the
// output directory path.
func writeInput(t *testing.T, size int) (input, outDir string, data []byte) {
	t.Helper()
	dir := t.TempDir()
	data = make([]byte, size)
	rand.New(rand.NewSource(1)).Read(data)
	input = filepath.Join(dir, "input.bin")
	if err := os.WriteFile(input, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return input, filepath.Join(dir, "enc"), data
}

func TestEncodeInfoDecodeRoundTrip(t *testing.T) {
	input, outDir, data := writeInput(t, 100_000)
	if err := cmdEncode([]string{input, outDir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdInfo([]string{outDir}); err != nil {
		t.Fatal(err)
	}
	output := filepath.Join(t.TempDir(), "out.bin")
	if err := cmdDecode([]string{outDir, output}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(output)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("decode round trip mismatch")
	}
}

func TestDecodeWithMissingBlocks(t *testing.T) {
	input, outDir, data := writeInput(t, 50_000)
	if err := cmdEncode([]string{"-n", "12", "-k", "6", "-d", "10", "-p", "12", input, outDir}); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 3, 6, 9, 10, 11} {
		if err := os.Remove(blockPath(outDir, i)); err != nil {
			t.Fatal(err)
		}
	}
	output := filepath.Join(t.TempDir(), "out.bin")
	if err := cmdDecode([]string{outDir, output}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(output)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded decode mismatch")
	}
	// Losing one more block crosses n-k.
	if err := os.Remove(blockPath(outDir, 1)); err != nil {
		t.Fatal(err)
	}
	if err := cmdDecode([]string{outDir, output}); err == nil {
		t.Fatal("decode beyond the failure budget did not error")
	}
}

func TestRepairRestoresBlockFile(t *testing.T) {
	input, outDir, _ := writeInput(t, 30_000)
	if err := cmdEncode([]string{input, outDir}); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(blockPath(outDir, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(blockPath(outDir, 5)); err != nil {
		t.Fatal(err)
	}
	if err := cmdRepair([]string{"-block", "5", outDir}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(blockPath(outDir, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("repaired block differs from the original")
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	input, outDir, _ := writeInput(t, 20_000)
	if err := cmdEncode([]string{input, outDir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{outDir}); err != nil {
		t.Fatalf("clean verify failed: %v", err)
	}
	// Flip a byte in block 2.
	path := blockPath(outDir, 2)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[10] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{outDir}); err == nil {
		t.Fatal("verify accepted a corrupted block")
	}
	// Repair and re-verify.
	if err := cmdRepair([]string{"-block", "2", outDir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{outDir}); err != nil {
		t.Fatalf("verify after repair: %v", err)
	}
}

func TestEncodeValidation(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdEncode([]string{empty, filepath.Join(dir, "out")}); err == nil {
		t.Fatal("empty input did not error")
	}
	if err := cmdEncode([]string{"-n", "6", "-k", "6", empty, filepath.Join(dir, "out")}); err == nil {
		t.Fatal("invalid parameters did not error")
	}
	if err := cmdInfo([]string{filepath.Join(dir, "nope")}); err == nil {
		t.Fatal("missing manifest did not error")
	}
}
