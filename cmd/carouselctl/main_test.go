package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"testing"

	"carousel/internal/blockserver"
	"carousel/internal/carousel"
	"carousel/internal/obs"
)

// writeInput creates a temporary input file and returns its path plus the
// output directory path.
func writeInput(t *testing.T, size int) (input, outDir string, data []byte) {
	t.Helper()
	dir := t.TempDir()
	data = make([]byte, size)
	rand.New(rand.NewSource(1)).Read(data)
	input = filepath.Join(dir, "input.bin")
	if err := os.WriteFile(input, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return input, filepath.Join(dir, "enc"), data
}

func TestEncodeInfoDecodeRoundTrip(t *testing.T) {
	input, outDir, data := writeInput(t, 100_000)
	if err := cmdEncode([]string{input, outDir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdInfo([]string{outDir}); err != nil {
		t.Fatal(err)
	}
	output := filepath.Join(t.TempDir(), "out.bin")
	if err := cmdDecode([]string{outDir, output}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(output)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("decode round trip mismatch")
	}
}

func TestDecodeWithMissingBlocks(t *testing.T) {
	input, outDir, data := writeInput(t, 50_000)
	if err := cmdEncode([]string{"-n", "12", "-k", "6", "-d", "10", "-p", "12", input, outDir}); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 3, 6, 9, 10, 11} {
		if err := os.Remove(blockPath(outDir, i)); err != nil {
			t.Fatal(err)
		}
	}
	output := filepath.Join(t.TempDir(), "out.bin")
	if err := cmdDecode([]string{outDir, output}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(output)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded decode mismatch")
	}
	// Losing one more block crosses n-k.
	if err := os.Remove(blockPath(outDir, 1)); err != nil {
		t.Fatal(err)
	}
	err = cmdDecode([]string{outDir, output})
	if err == nil {
		t.Fatal("decode beyond the failure budget did not error")
	}
	if got := exitCode(err); got != exitTooFewSurvivors {
		t.Fatalf("decode beyond budget: exit %d (%v), want %d", got, err, exitTooFewSurvivors)
	}
}

func TestRepairRestoresBlockFile(t *testing.T) {
	input, outDir, _ := writeInput(t, 30_000)
	if err := cmdEncode([]string{input, outDir}); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(blockPath(outDir, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(blockPath(outDir, 5)); err != nil {
		t.Fatal(err)
	}
	if err := cmdRepair([]string{"-block", "5", outDir}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(blockPath(outDir, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("repaired block differs from the original")
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	input, outDir, _ := writeInput(t, 20_000)
	if err := cmdEncode([]string{input, outDir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{outDir}); err != nil {
		t.Fatalf("clean verify failed: %v", err)
	}
	// Flip a byte in block 2.
	path := blockPath(outDir, 2)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[10] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	err = cmdVerify([]string{outDir})
	if err == nil {
		t.Fatal("verify accepted a corrupted block")
	}
	if !errors.Is(err, blockserver.ErrCorrupt) {
		t.Fatalf("verify error %v is not ErrCorrupt", err)
	}
	if got := exitCode(err); got != exitCorrupt {
		t.Fatalf("corrupt verify: exit %d, want %d", got, exitCorrupt)
	}
	// Repair and re-verify.
	if err := cmdRepair([]string{"-block", "2", outDir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{outDir}); err != nil {
		t.Fatalf("verify after repair: %v", err)
	}
}

func TestEncodeValidation(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdEncode([]string{empty, filepath.Join(dir, "out")}); err == nil {
		t.Fatal("empty input did not error")
	}
	if err := cmdEncode([]string{"-n", "6", "-k", "6", empty, filepath.Join(dir, "out")}); err == nil {
		t.Fatal("invalid parameters did not error")
	}
	err := cmdInfo([]string{filepath.Join(dir, "nope")})
	if err == nil {
		t.Fatal("missing manifest did not error")
	}
	if got := exitCode(err); got != exitNotFound {
		t.Fatalf("missing manifest: exit %d (%v), want %d", got, err, exitNotFound)
	}
}

func TestExitCode(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, 0},
		{"generic", errors.New("boom"), exitFailure},
		{"not-found", blockserver.ErrNotFound, exitNotFound},
		{"missing-manifest", fmt.Errorf("reading manifest: %w", os.ErrNotExist), exitNotFound},
		{"corrupt", fmt.Errorf("%w: block 4", blockserver.ErrCorrupt), exitCorrupt},
		{"timeout", fmt.Errorf("get: %w", blockserver.ErrTimeout), exitTimeout},
		{"timeout-joined", errors.Join(blockserver.ErrTimeout, context.DeadlineExceeded), exitTimeout},
		{"too-few-survivors", blockserver.ErrTooFewSurvivors, exitTooFewSurvivors},
		{"too-few-blocks", fmt.Errorf("decode: %w", carousel.ErrTooFewBlocks), exitTooFewSurvivors},
		// Corruption is reported even when it also caused a survivor
		// shortfall: the more actionable diagnosis wins.
		{"corrupt-and-short", errors.Join(blockserver.ErrCorrupt, blockserver.ErrTooFewSurvivors), exitCorrupt},
		{"partial-stats", fmt.Errorf("%w: 1 of 3 node(s) unreachable", errPartialStats), exitPartialStats},
	}
	for _, tc := range cases {
		if got := exitCode(tc.err); got != tc.want {
			t.Errorf("%s: exitCode(%v) = %d, want %d", tc.name, tc.err, got, tc.want)
		}
	}
}

// TestStatsPartialMerge: a scrape with one live endpoint and one
// unreachable node must still merge the reachable side and return the
// partial-stats sentinel (exit code 7), while an all-dead scrape fails
// outright with exit code 1.
func TestStatsPartialMerge(t *testing.T) {
	addr, stop, err := obs.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	// A port from a closed listener: reliably unreachable.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	err = cmdStats([]string{"-addrs", addr + "," + deadAddr})
	if !errors.Is(err, errPartialStats) {
		t.Fatalf("partial scrape error = %v, want errPartialStats", err)
	}
	if got := exitCode(err); got != exitPartialStats {
		t.Fatalf("partial scrape exit = %d, want %d", got, exitPartialStats)
	}

	if err := cmdStats([]string{"-addrs", addr}); err != nil {
		t.Fatalf("fully-reachable scrape: %v", err)
	}

	err = cmdStats([]string{"-addrs", deadAddr})
	if err == nil || errors.Is(err, errPartialStats) {
		t.Fatalf("all-unreachable scrape error = %v, want plain failure", err)
	}
	if got := exitCode(err); got != exitFailure {
		t.Fatalf("all-unreachable exit = %d, want %d", got, exitFailure)
	}
}
