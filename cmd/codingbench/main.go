// Command codingbench regenerates the coding microbenchmarks of the paper:
//
//	Fig. 5  — generator matrices of (3,2) RS vs (3,2,2,3) Carousel
//	Fig. 6a — encoding throughput vs k   (n=2k; RS, Carousel d=k, MSR d=2k-1, Carousel d=2k-1)
//	Fig. 6b — decoding throughput vs k   (one data block lost, decode from k blocks)
//	Fig. 7  — network traffic to reconstruct one block vs k
//	Fig. 8a — reconstruction time at the newcomer vs k
//	Fig. 8b — reconstruction time at a helper vs k
//
// Usage:
//
//	codingbench [-fig all|5|6a|6b|7|8a|8b|ext|lrc|par|tol] [-ks 2,4,6,8,10] [-mb 16] [-trafficmb 512] [-reps 3] [-maxprocs 1,2,4,8] [-json]
//
// With -json the throughput figures (6a, 6b) are also written to
// BENCH_codingbench.json, one entry per (figure, scheme, k, gomaxprocs).
//
// -maxprocs sweeps GOMAXPROCS: the selected figures run once per value,
// with the runtime resized and the shared worker pool grown before each
// pass, so one invocation measures the per-core scaling curve. Codes pick
// up the new GOMAXPROCS because encode/decode concurrency defaults to it.
//
// Absolute throughput depends on the machine (the paper used ISA-L on a
// c4.4xlarge); the comparisons across codes use identical kernels, so the
// relative shape is what to read.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"carousel/internal/bench"
	"carousel/internal/carousel"
	"carousel/internal/lrc"
	"carousel/internal/matrix"
	"carousel/internal/mbr"
	"carousel/internal/obs"
	"carousel/internal/reedsolomon"
	"carousel/internal/workpool"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: all, 5, 6a, 6b, 7, 8a, 8b, ext, lrc, par, tol")
	ksFlag := flag.String("ks", "2,4,6,8,10", "comma-separated k values (n = 2k)")
	mb := flag.Int("mb", 16, "block size in MiB for throughput and timing figures")
	trafficMB := flag.Int("trafficmb", 512, "block size in MiB that Fig. 7 traffic is reported for")
	reps := flag.Int("reps", 3, "timed repetitions per measurement")
	maxprocs := flag.String("maxprocs", "", "comma-separated GOMAXPROCS values to sweep (default: current value only)")
	jsonOut := flag.Bool("json", false, "also write throughput results to "+jsonPath)
	flag.Parse()

	log := obs.SetDefaultLogger(false)
	ks, err := parseKs(*ksFlag)
	if err != nil {
		log.Error("bad -ks", "err", err)
		os.Exit(1)
	}
	sweep, err := parseMaxprocs(*maxprocs)
	if err != nil {
		log.Error("bad -maxprocs", "err", err)
		os.Exit(1)
	}
	run := func(name string, fn func([]int, int, int) error) {
		if *fig != "all" && *fig != name {
			return
		}
		if err := fn(ks, *mb, *reps); err != nil {
			log.Error("figure failed", "fig", name, "err", err)
			os.Exit(1)
		}
	}
	for _, mp := range sweep {
		setMaxProcs(mp)
		if len(sweep) > 1 {
			bench.Section(os.Stdout, fmt.Sprintf("GOMAXPROCS = %d", mp))
		}
		run("5", func([]int, int, int) error { return fig5() })
		run("6a", fig6a)
		run("6b", fig6b)
		run("7", func(ks []int, _, _ int) error { return fig7(ks, *trafficMB) })
		run("8a", fig8a)
		run("8b", fig8b)
		run("ext", extFutureWork)
		run("lrc", func(ks []int, _, _ int) error { return lrcComparison(*trafficMB) })
		run("par", parEncode)
		run("tol", func([]int, int, int) error { return tolerance() })
	}
	if *jsonOut {
		if err := writeJSON(*mb, *reps); err != nil {
			log.Error("writing JSON failed", "err", err)
			os.Exit(1)
		}
	}
}

// curMaxProcs is the GOMAXPROCS value of the current sweep pass; record
// stamps it onto every row so the JSON carries the axis per entry rather
// than as a document-level field.
var curMaxProcs = runtime.GOMAXPROCS(0)

// setMaxProcs resizes the runtime and grows the shared worker pool for one
// sweep pass. The pool is grow-only, so sweeping downward still measures
// the smaller GOMAXPROCS correctly: the runtime schedules that many Ps
// regardless of how many pool workers are parked.
func setMaxProcs(n int) {
	runtime.GOMAXPROCS(n)
	workpool.Ensure(n)
	curMaxProcs = n
}

// parseMaxprocs parses the -maxprocs sweep list; empty means a single pass
// at the current GOMAXPROCS.
func parseMaxprocs(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return []int{runtime.GOMAXPROCS(0)}, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("invalid GOMAXPROCS %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// jsonPath is where -json writes the machine-readable snapshot of the
// throughput figures, one entry per (figure, scheme, k).
const jsonPath = "BENCH_codingbench.json"

type jsonEntry struct {
	Figure     string  `json:"figure"` // "6a" (encode) or "6b" (decode)
	Scheme     string  `json:"scheme"`
	K          int     `json:"k"`
	GoMaxProcs int     `json:"gomaxprocs"` // sweep axis, stamped per row
	MBps       float64 `json:"mb_per_s"`
}

var jsonResults = []jsonEntry{} // non-nil so -json always emits an array

// record stores one throughput measurement for -json and returns it, so
// table rows can record in-line.
func record(fig, scheme string, k int, mbps float64) float64 {
	jsonResults = append(jsonResults, jsonEntry{Figure: fig, Scheme: scheme, K: k, GoMaxProcs: curMaxProcs, MBps: mbps})
	return mbps
}

func writeJSON(mb, reps int) error {
	doc := struct {
		BlockMiB int         `json:"block_mib"`
		Reps     int         `json:"reps"`
		Results  []jsonEntry `json:"results"`
	}{mb, reps, jsonResults}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(buf, '\n'), 0o644)
}

// tolerance enumerates every f-failure pattern and reports the fraction
// each code family survives — the durability side of the related-work
// trade-off. MDS codes (RS, MSR, Carousel) survive everything up to
// n-k; LRC's coverage decays beyond its guarantee; replication depends on
// which copies die.
func tolerance() error {
	bench.Section(os.Stdout, "Related-work comparison: fraction of f-failure patterns survived")
	car, err := carousel.New(12, 6, 10, 12)
	if err != nil {
		return err
	}
	lc, err := lrc.New(6, 2, 2)
	if err != nil {
		return err
	}
	t := bench.NewTable(os.Stdout, "f", "RS/MSR/Carousel(12,6)", "LRC(6,2,2)", "3x-replication (4 blocks)")
	for f := 1; f <= 6; f++ {
		mds := 0.0
		if f <= car.N()-car.K() {
			mds = 1.0
		}
		lrcOK := coverage(lc.N(), f, func(avail []bool) bool { return lc.IsDecodable(avail) })
		// 3x replication of 4 blocks = 12 stored copies; data survives
		// when no block loses all 3 copies.
		replOK := coverage(12, f, func(avail []bool) bool {
			for b := 0; b < 4; b++ {
				alive := false
				for c := 0; c < 3; c++ {
					if avail[b*3+c] {
						alive = true
						break
					}
				}
				if !alive {
					return false
				}
			}
			return true
		})
		t.Row(f, fmt.Sprintf("%.3f", mds), fmt.Sprintf("%.3f", lrcOK), fmt.Sprintf("%.3f", replOK))
	}
	t.Flush()
	fmt.Println("Same 2x overhead: the MDS families survive every loss up to n-k = 6;")
	fmt.Println("LRC(6,2,2) stores less (1.67x) and survives less; 3x replication stores")
	fmt.Println("more (3x) yet can lose data to 3 correlated failures.")
	fmt.Println()
	return nil
}

// coverage enumerates all f-subsets of n blocks and returns the surviving
// fraction.
func coverage(n, f int, ok func([]bool) bool) float64 {
	avail := make([]bool, n)
	idx := make([]int, f)
	total, good := 0, 0
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == f {
			for i := range avail {
				avail[i] = true
			}
			for _, i := range idx {
				avail[i] = false
			}
			total++
			if ok(avail) {
				good++
			}
			return
		}
		for i := start; i <= n-(f-depth); i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	if total == 0 {
		return 0
	}
	return float64(good) / float64(total)
}

// parEncode measures multi-core encode scaling (WithEncodeConcurrency), an
// implementation ablation: the paper's ISA-L prototype used 16 cores; this
// shows the pure-Go kernel's scaling on this machine.
func parEncode(ks []int, mb, reps int) error {
	bench.Section(os.Stdout, fmt.Sprintf("Ablation: Carousel(2k,k,2k-1,2k) encode throughput vs workers (MB/s), blocks of %d MiB", mb))
	workers := []int{1, 2, 4, 8}
	headers := []string{"k"}
	for _, w := range workers {
		headers = append(headers, fmt.Sprintf("w=%d", w))
	}
	t := bench.NewTable(os.Stdout, headers...)
	for _, k := range ks {
		n := 2 * k
		row := []any{k}
		var size int
		var data [][]byte
		for _, w := range workers {
			c, err := carousel.New(n, k, 2*k-1, n, carousel.WithEncodeConcurrency(w))
			if err != nil {
				return err
			}
			if data == nil {
				size = (mb<<20 + c.BlockAlign() - 1) / c.BlockAlign() * c.BlockAlign()
				data = bench.RandomShards(k, size, int64(k))
			}
			row = append(row, bench.Measure(reps, k*size, func() { mustB(c.Encode(data)) }))
		}
		t.Row(row...)
	}
	t.Flush()
	return nil
}

// lrcComparison contrasts the code families the paper's related-work
// section discusses at (roughly) matched parameters: repair traffic,
// repair locality (helpers contacted), data parallelism, and failure
// tolerance.
func lrcComparison(trafficMB int) error {
	bench.Section(os.Stdout, fmt.Sprintf("Related-work comparison at k=6 (blocks of %d MiB)", trafficMB))
	rs, err := reedsolomon.New(12, 6)
	if err != nil {
		return err
	}
	car, err := carousel.New(12, 6, 10, 12)
	if err != nil {
		return err
	}
	lc, err := lrc.New(6, 2, 2)
	if err != nil {
		return err
	}
	mb, err := mbr.New(12, 6, 10)
	if err != nil {
		return err
	}
	blockSize := trafficMB << 20
	t := bench.NewTable(os.Stdout, "code", "overhead", "repair MB", "helpers", "parallelism", "any-f tolerated")
	t.Row("RS(12,6)", "2.00x", float64(rs.ReconstructionTraffic(blockSize))/1e6, 6, 6, 6)
	t.Row("Carousel(12,6,10,12)", "2.00x", float64(car.ReconstructionTraffic(blockSize))/1e6, 10, 12, 6)
	t.Row("MSR(12,6,10)", "2.00x", float64(car.ReconstructionTraffic(blockSize))/1e6, 10, 6, 6)
	t.Row("MBR(12,6,10)", fmt.Sprintf("%.2fx", mb.StorageOverhead()),
		float64(mb.ReconstructionTraffic(blockSize))/1e6, mb.D(), 6, 6)
	t.Row("LRC(6,2,2)", fmt.Sprintf("%.2fx", lc.StorageOverhead()),
		float64(lc.ReconstructionTraffic(0, blockSize))/1e6, lc.GroupSize(), 6, 3)
	t.Flush()
	fmt.Println("LRC trades the MDS property for cheap local repair (3 helpers) at lower")
	fmt.Println("overhead; Carousel keeps MDS, halves repair traffic versus RS, and is the")
	fmt.Println("only one to raise data parallelism beyond k.")
	fmt.Println()
	return nil
}

// extFutureWork quantifies the extension Section VIII-B leaves as future
// work: recovering the original data by visiting more than k blocks.
// Decode uses exactly k blocks (the paper's fair-comparison setting);
// ParallelRead visits all available data-bearing blocks, so with one block
// lost it solves a system 1/p the size and copies the rest.
func extFutureWork(ks []int, mb, reps int) error {
	bench.Section(os.Stdout, fmt.Sprintf("Extension: Carousel degraded recovery, k-block decode vs p-block parallel read (MB/s), blocks of %d MiB", mb))
	t := bench.NewTable(os.Stdout, "k", "Decode(k blocks)", "ParallelRead(p blocks)")
	for _, k := range ks {
		f, err := bench.NewFamily(k)
		if err != nil {
			return err
		}
		size := f.AlignBlockSize(mb << 20)
		data := bench.RandomShards(k, size, int64(k))
		blocks, err := f.CarD.Encode(data)
		if err != nil {
			return err
		}
		vol := k * size
		// One lost block in both scenarios.
		kOnly := make([][]byte, len(blocks))
		for i := 1; i <= k; i++ {
			kOnly[i] = blocks[i]
		}
		all := make([][]byte, len(blocks))
		copy(all, blocks)
		all[0] = nil
		dec := bench.Measure(reps, vol, func() { mustB(f.CarD.Decode(kOnly)) })
		par := bench.Measure(reps, vol, func() { mustB(f.CarD.ParallelRead(all)) })
		t.Row(k, dec, par)
	}
	t.Flush()
	return nil
}

func parseKs(s string) ([]int, error) {
	var ks []int
	for _, part := range strings.Split(s, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || k < 2 {
			return nil, fmt.Errorf("invalid k %q", part)
		}
		ks = append(ks, k)
	}
	return ks, nil
}

// fig5 prints the (3,2) RS and (3,2,2,3) Carousel generator matrices and
// their sparsity, reproducing the comparison of Fig. 5.
func fig5() error {
	bench.Section(os.Stdout, "Fig. 5: generator matrices, (3,2) RS vs (3,2,2,3) Carousel")
	rs, err := reedsolomon.New(3, 2)
	if err != nil {
		return err
	}
	car, err := carousel.New(3, 2, 2, 3)
	if err != nil {
		return err
	}
	printGen := func(name string, g *matrix.Matrix, k int) {
		fmt.Printf("%s generator (%dx%d, %d nonzeros):\n%s", name, g.Rows(), g.Cols(), g.NNZ(), g)
		maxParity := 0
		for r := 0; r < g.Rows(); r++ {
			if _, unit := g.UnitColumn(r); !unit {
				if nnz := g.RowNNZ(r); nnz > maxParity {
					maxParity = nnz
				}
			}
		}
		fmt.Printf("max nonzeros in a parity row: %d (k = %d)\n\n", maxParity, k)
	}
	printGen("RS(3,2)", rs.GeneratorMatrix(), 2)
	printGen("Carousel(3,2,2,3)", car.GeneratorMatrix(), 2)
	fmt.Println("The Carousel matrix is 3x larger (expansion by P=3) but stays sparse:")
	fmt.Println("every parity-unit row combines at most k=2 data units, so encoding")
	fmt.Println("complexity per output byte matches RS (the paper's encoding optimization).")
	fmt.Println()
	return nil
}

// fig6a measures encoding throughput.
func fig6a(ks []int, mb, reps int) error {
	bench.Section(os.Stdout, fmt.Sprintf("Fig. 6a: encoding throughput (MB/s), blocks of %d MiB", mb))
	t := bench.NewTable(os.Stdout, "k", "RS", "Carousel(d=k)", "MSR(d=2k-1)", "Carousel(d=2k-1)")
	for _, k := range ks {
		f, err := bench.NewFamily(k)
		if err != nil {
			return err
		}
		size := f.AlignBlockSize(mb << 20)
		data := bench.RandomShards(k, size, int64(k))
		vol := k * size
		rs := record("6a", "RS", k, bench.Measure(reps, vol, func() { mustB(f.RS.Encode(data)) }))
		ck := record("6a", "Carousel(d=k)", k, bench.Measure(reps, vol, func() { mustB(f.CarK.Encode(data)) }))
		ms := record("6a", "MSR(d=2k-1)", k, bench.Measure(reps, vol, func() { mustB(f.MSR.Encode(data)) }))
		cd := record("6a", "Carousel(d=2k-1)", k, bench.Measure(reps, vol, func() { mustB(f.CarD.Encode(data)) }))
		t.Row(k, rs, ck, ms, cd)
	}
	t.Flush()
	return nil
}

// fig6b measures decoding throughput with one data block missing: the
// paper decodes from blocks 2..k+1 (k-1 data blocks and one parity block).
func fig6b(ks []int, mb, reps int) error {
	bench.Section(os.Stdout, fmt.Sprintf("Fig. 6b: decoding throughput (MB/s), one data block lost, blocks of %d MiB", mb))
	t := bench.NewTable(os.Stdout, "k", "RS", "Carousel(d=k)", "MSR(d=2k-1)", "Carousel(d=2k-1)")
	for _, k := range ks {
		f, err := bench.NewFamily(k)
		if err != nil {
			return err
		}
		size := f.AlignBlockSize(mb << 20)
		data := bench.RandomShards(k, size, int64(k))
		vol := k * size
		survive := func(blocks [][]byte) [][]byte {
			avail := make([][]byte, len(blocks))
			for i := 1; i <= k; i++ {
				avail[i] = blocks[i]
			}
			return avail
		}
		rsBlocks, err := f.RS.Encode(data)
		if err != nil {
			return err
		}
		ckBlocks, err := f.CarK.Encode(data)
		if err != nil {
			return err
		}
		msBlocks, err := f.MSR.Encode(data)
		if err != nil {
			return err
		}
		cdBlocks, err := f.CarD.Encode(data)
		if err != nil {
			return err
		}
		rs := record("6b", "RS", k, bench.Measure(reps, vol, func() { mustB(f.RS.Decode(survive(rsBlocks))) }))
		ck := record("6b", "Carousel(d=k)", k, bench.Measure(reps, vol, func() { mustB(f.CarK.Decode(survive(ckBlocks))) }))
		ms := record("6b", "MSR(d=2k-1)", k, bench.Measure(reps, vol, func() { mustB(f.MSR.Decode(survive(msBlocks))) }))
		cd := record("6b", "Carousel(d=2k-1)", k, bench.Measure(reps, vol, func() { mustB(f.CarD.Decode(survive(cdBlocks))) }))
		t.Row(k, rs, ck, ms, cd)
	}
	t.Flush()
	return nil
}

// fig7 reports the network traffic to reconstruct block 0, measured by
// summing the actual helper uploads of a real repair, reported for
// trafficMB-sized blocks.
func fig7(ks []int, trafficMB int) error {
	bench.Section(os.Stdout, fmt.Sprintf("Fig. 7: reconstruction traffic (MB) for %d MiB blocks", trafficMB))
	t := bench.NewTable(os.Stdout, "k", "RS", "Carousel(d=k)", "MSR(d=2k-1)", "Carousel(d=2k-1)")
	for _, k := range ks {
		f, err := bench.NewFamily(k)
		if err != nil {
			return err
		}
		// Verify with a real small repair that measured chunk sizes match
		// the analytic formula, then report at the requested block size.
		size := f.AlignBlockSize(1 << 16)
		data := bench.RandomShards(k, size, int64(k))
		measured := func(traffic func(int) int, repair func([][]byte) int) float64 {
			blocks := traffic(size)
			if got := repair(data); got != blocks {
				panic(fmt.Sprintf("measured traffic %d != analytic %d", got, blocks))
			}
			return float64(traffic(trafficMB<<20)) / 1e6
		}
		rs := measured(f.RS.ReconstructionTraffic, func(d [][]byte) int {
			blocks, _ := f.RS.Encode(d)
			work := make([][]byte, len(blocks))
			copy(work, blocks)
			work[0] = nil
			n := 0
			for i := 1; i <= k; i++ {
				n += len(work[i])
			}
			mustE(f.RS.Reconstruct(work))
			return n
		})
		ck := measured(f.CarK.ReconstructionTraffic, func(d [][]byte) int {
			return carouselRepairTraffic(f.CarK, d)
		})
		ms := measured(f.MSR.ReconstructionTraffic, func(d [][]byte) int {
			blocks, _ := f.MSR.Encode(d)
			helpers := firstHelpers(f.MSR.N(), f.MSR.D(), 0)
			n := 0
			for _, h := range helpers {
				ch, err := f.MSR.HelperChunk(h, 0, blocks[h])
				mustE(err)
				n += len(ch)
			}
			return n
		})
		cd := measured(f.CarD.ReconstructionTraffic, func(d [][]byte) int {
			return carouselRepairTraffic(f.CarD, d)
		})
		t.Row(k, rs, ck, ms, cd)
	}
	t.Flush()
	return nil
}

// carouselRepairTraffic runs a real repair of block 0 and returns the
// bytes the helpers uploaded.
func carouselRepairTraffic(c *carousel.Code, data [][]byte) int {
	blocks, err := c.Encode(data)
	mustE(err)
	helpers := firstHelpers(c.N(), c.D(), 0)
	n := 0
	for _, h := range helpers {
		ch, err := c.HelperChunk(h, 0, blocks[h])
		mustE(err)
		n += len(ch)
	}
	return n
}

// fig8a measures the newcomer-side reconstruction time.
func fig8a(ks []int, mb, reps int) error {
	bench.Section(os.Stdout, fmt.Sprintf("Fig. 8a: reconstruction time at the newcomer (s), blocks of %d MiB", mb))
	t := bench.NewTable(os.Stdout, "k", "RS", "Carousel(d=k)", "MSR(d=2k-1)", "Carousel(d=2k-1)")
	for _, k := range ks {
		f, err := bench.NewFamily(k)
		if err != nil {
			return err
		}
		size := f.AlignBlockSize(mb << 20)
		data := bench.RandomShards(k, size, int64(k))

		rsBlocks, _ := f.RS.Encode(data)
		rsSec := bench.MeasureSeconds(reps, func() {
			work := make([][]byte, len(rsBlocks))
			copy(work, rsBlocks)
			work[0] = nil
			mustE(f.RS.Reconstruct(work))
		})
		ckSec := carouselNewcomerSeconds(f.CarK, data, reps)
		msBlocks, _ := f.MSR.Encode(data)
		msHelpers := firstHelpers(f.MSR.N(), f.MSR.D(), 0)
		msChunks := make([][]byte, len(msHelpers))
		for i, h := range msHelpers {
			msChunks[i], _ = f.MSR.HelperChunk(h, 0, msBlocks[h])
		}
		msSec := bench.MeasureSeconds(reps, func() {
			mustB(f.MSR.RepairBlock(0, msHelpers, msChunks))
		})
		cdSec := carouselNewcomerSeconds(f.CarD, data, reps)
		t.Row(k, rsSec, ckSec, msSec, cdSec)
	}
	t.Flush()
	return nil
}

func carouselNewcomerSeconds(c *carousel.Code, data [][]byte, reps int) float64 {
	blocks, err := c.Encode(data)
	mustE(err)
	helpers := firstHelpers(c.N(), c.D(), 0)
	chunks := make([][]byte, len(helpers))
	for i, h := range helpers {
		chunks[i], err = c.HelperChunk(h, 0, blocks[h])
		mustE(err)
	}
	return bench.MeasureSeconds(reps, func() {
		mustB(c.RepairBlock(0, helpers, chunks))
	})
}

// fig8b measures the helper-side time; RS helpers only send data, so the
// paper (and this table) shows MSR and Carousel(d=2k-1).
func fig8b(ks []int, mb, reps int) error {
	bench.Section(os.Stdout, fmt.Sprintf("Fig. 8b: time at one helper (s), blocks of %d MiB", mb))
	t := bench.NewTable(os.Stdout, "k", "MSR(d=2k-1)", "Carousel(d=2k-1)")
	for _, k := range ks {
		f, err := bench.NewFamily(k)
		if err != nil {
			return err
		}
		size := f.AlignBlockSize(mb << 20)
		data := bench.RandomShards(k, size, int64(k))
		msBlocks, _ := f.MSR.Encode(data)
		msSec := bench.MeasureSeconds(reps, func() {
			mustB(f.MSR.HelperChunk(1, 0, msBlocks[1]))
		})
		cdBlocks, _ := f.CarD.Encode(data)
		cdSec := bench.MeasureSeconds(reps, func() {
			mustB(f.CarD.HelperChunk(1, 0, cdBlocks[1]))
		})
		t.Row(k, msSec, cdSec)
	}
	t.Flush()
	return nil
}

// firstHelpers returns the first d block indices excluding failed.
func firstHelpers(n, d, failed int) []int {
	out := make([]int, 0, d)
	for i := 0; i < n && len(out) < d; i++ {
		if i != failed {
			out = append(out, i)
		}
	}
	return out
}

func mustE(err error) {
	if err != nil {
		panic(err)
	}
}

func mustB[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
