// Command clusterbench regenerates the paper's Hadoop cluster experiments
// on the simulated cluster:
//
//	Fig. 9  — map/reduce/job time of terasort and wordcount:
//	          (12,6) RS vs (12,6,10,12) Carousel, 3 GB file, 512 MB blocks,
//	          30 slaves
//	Fig. 10 — job completion time of (12,6,10,p) Carousel for p in
//	          {6,8,10,12} vs 1x and 2x replication
//	Fig. 11 — time to retrieve the 3 GB file: 3x replication via
//	          sequential get vs RS vs (12,6,10,10) Carousel, with datanode
//	          reads capped at 300 Mbps, with and without one failure
//
// Usage:
//
//	clusterbench [-fig all|9|10|11|deg|tail|net|recovery|swarm] [-scale 32] [-netmb 8] [-netreps 3] [-recmb 8] [-recreps 3] [-maxprocs 1,2,4,8] [-json]
//
// -scale divides the data size and every bandwidth by the same factor, so
// simulated durations equal the full-scale run while the real task logic
// (actual word counting and sorting) touches 1/scale of the bytes.
// Client-side decode time in Fig. 11 is charged at the throughput of this
// machine's real decoder, measured at startup.
//
// -fig net is different in kind: it boots a live 12-server TCP cluster on
// loopback and A/Bs the pipelined pooled read/write engine against the
// sequential dial-per-stripe baseline on a -netmb MiB, 16-stripe file
// (never simulated, so it is excluded from -fig all). -fig recovery is its
// node-repair sibling: one server of the live cluster is declared failed
// and the parallel recovery engine (Store.RecoverServer) is A/B'd against
// the sequential repair loop on a -recmb MiB file, reporting recovery MB/s
// and the per-helper chunk spread. -fig swarm is the hot-read benchmark:
// an open-loop Poisson swarm (hundreds of concurrent clients, seeded
// Zipf(s≈1.1) object popularity) offers the same load to the store with
// its stripe cache off and on — plus both again under faultnet straggler
// injection — reporting reads/s and p50/p99/p999 from scheduled-arrival
// time. With -json the measurements are also written to
// BENCH_clusterbench.json (each figure owns a section).
//
// -maxprocs sweeps the live-TCP figures across GOMAXPROCS values (e.g.
// -maxprocs 1,2,4,8): each pass pins GOMAXPROCS, sizes the shared worker
// pool to match, and contributes one result row per case tagged with a
// per-row "gomaxprocs" axis in the JSON snapshot.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"carousel/internal/bench"
	"carousel/internal/carousel"
	"carousel/internal/cluster"
	"carousel/internal/dfs"
	"carousel/internal/mapreduce"
	"carousel/internal/obs"
	"carousel/internal/reedsolomon"
	"carousel/internal/workload"
	"carousel/internal/workpool"
)

const (
	mb           = 1 << 20
	mbps         = 1e6 / 8 // bytes/second per Mbit/s
	fullFile     = 3 * 1024 * mb
	fullBlock    = 512 * mb
	slaves       = 30
	reducers     = 6
	taskOverhead = 3.0 // seconds per Hadoop task (JVM start, setup)
)

// calib holds the full-scale node calibration; see EXPERIMENTS.md.
var calib = cluster.NodeSpec{
	DiskReadBW:  100 * mb,
	DiskWriteBW: 100 * mb,
	NetInBW:     125 * mb, // 1 Gbps
	NetOutBW:    125 * mb,
	Slots:       2,
	ComputeBW:   20 * mb, // Hadoop map-task processing rate
}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: all, 9, 10, 11, deg, tail, net, recovery")
	scale := flag.Int("scale", 32, "scale-down factor for data sizes and bandwidths")
	netMB := flag.Int("netmb", 8, "file size in MiB for the -fig net TCP read/write A/B")
	netReps := flag.Int("netreps", 3, "benchmark repetitions per -fig net case (fastest wins)")
	recMB := flag.Int("recmb", 8, "file size in MiB for the -fig recovery TCP A/B")
	recReps := flag.Int("recreps", 3, "benchmark repetitions per -fig recovery case (fastest wins)")
	recDelay := flag.Duration("recdelay", 500*time.Microsecond,
		"emulated network latency per server response write in the -fig recovery A/B (tc-netem stand-in; applied to both variants)")
	maxprocs := flag.String("maxprocs", "",
		"comma-separated GOMAXPROCS values to sweep the -fig net/recovery A/Bs over (e.g. 1,2,4,8; default: current GOMAXPROCS only)")
	swarmObjs := flag.Int("swarmobjs", 256, "object population size for the -fig swarm open-loop Zipf benchmark")
	swarmCache := flag.Int("swarmcache", 4, "stripe cache budget in MiB for the -fig swarm cache-on variants")
	swarmDur := flag.Duration("swarmdur", 3*time.Second, "open-loop arrival window per -fig swarm variant")
	swarmRate := flag.Float64("swarmrate", 0, "offered load in reads/s for -fig swarm (0 = calibrate cache-off capacity and overload it 3x)")
	swarmClients := flag.Int("swarmclients", 384, "max concurrent in-flight reads per -fig swarm variant (arrivals beyond it are shed)")
	swarmSeed := flag.Int64("swarmseed", 42, "root seed for the -fig swarm Zipf object sequence and arrival process")
	jsonOut := flag.Bool("json", false, "with -fig net/recovery/swarm, also write measurements to "+netJSONPath)
	flag.Parse()
	if *scale < 1 {
		obs.SetDefaultLogger(false).Error("scale must be >= 1")
		os.Exit(1)
	}
	sweep, err := parseMaxprocs(*maxprocs)
	if err != nil {
		obs.SetDefaultLogger(false).Error("bad -maxprocs", "err", err)
		os.Exit(1)
	}
	if *fig == "all" || *fig == "9" {
		if err := fig9(*scale); err != nil {
			fail(err)
		}
	}
	if *fig == "all" || *fig == "10" {
		if err := fig10(*scale); err != nil {
			fail(err)
		}
	}
	if *fig == "all" || *fig == "11" {
		if err := fig11(*scale); err != nil {
			fail(err)
		}
	}
	if *fig == "all" || *fig == "deg" {
		if err := figDegraded(*scale); err != nil {
			fail(err)
		}
	}
	if *fig == "all" || *fig == "tail" {
		if err := figTail(*scale); err != nil {
			fail(err)
		}
	}
	if *fig == "net" {
		if err := figNet(*netMB, *netReps, sweep, *jsonOut); err != nil {
			fail(err)
		}
	}
	if *fig == "recovery" {
		if err := figRecovery(*recMB, *recReps, *recDelay, sweep, *jsonOut); err != nil {
			fail(err)
		}
	}
	if *fig == "swarm" {
		if err := figSwarm(*swarmObjs, *swarmCache, *swarmDur, *swarmRate, *swarmClients, *swarmSeed, *jsonOut); err != nil {
			fail(err)
		}
	}
}

// parseMaxprocs parses the -maxprocs sweep list; empty means "just the
// current GOMAXPROCS" (no sweep).
func parseMaxprocs(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return []int{runtime.GOMAXPROCS(0)}, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad GOMAXPROCS value %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

// setMaxProcs pins the runtime's P count and grows the shared worker pool
// to match, so both the stripe pipeline's decode fan-out and the codec's
// intra-stripe parallelism see the swept width.
func setMaxProcs(n int) {
	runtime.GOMAXPROCS(n)
	workpool.Ensure(n)
}

// figTail extends the evaluation with concurrent clients: 20 readers with
// staggered starts pull the same file while the datanodes' 300 Mbps read
// caps are shared. Spreading each read over p=10 sources instead of k=6
// lowers both the mean and the tail — the load-spreading effect the
// paper's introduction motivates (read throughput bottlenecked at the
// servers).
func figTail(scale int) error {
	bench.Section(os.Stdout, fmt.Sprintf("Extension: 20 concurrent readers, per-read latency (scale 1/%d)", scale))
	car, err := carousel.New(12, 6, 10, 10)
	if err != nil {
		return err
	}
	rs, err := reedsolomon.New(12, 6)
	if err != nil {
		return err
	}
	blockSize := blockSizeFor(scale, car.BlockAlign())
	data := workload.Text(6*blockSize, 13)
	const clients = 20

	t := bench.NewTable(os.Stdout, "scheme", "mean (s)", "p90 (s)", "max (s)")
	for _, v := range []struct {
		name   string
		scheme dfs.Scheme
	}{
		{"RS(12,6), 6 streams/read", dfs.RS{Code: rs}},
		{"Carousel(12,6,10,10), 10 streams/read", dfs.Carousel{Code: car}},
	} {
		sim := cluster.NewSim()
		cl := cluster.NewCluster(sim, 18, scaledSpec(cluster.NodeSpec{DiskReadBW: 300 * mbps}, scale))
		clientNodes := make([]*cluster.Node, clients)
		for i := range clientNodes {
			clientNodes[i] = cl.AddNode(fmt.Sprintf("client%d", i),
				scaledSpec(cluster.NodeSpec{NetInBW: 2500 * mbps}, scale))
		}
		fs := dfs.New(cl, cl.Nodes()[:18])
		if _, err := fs.Write("file", data, blockSize, v.scheme); err != nil {
			return err
		}
		durations := make([]float64, clients)
		for i := 0; i < clients; i++ {
			i := i
			start := float64(i) * 0.5
			sim.GoAt(start, "reader", func(p *cluster.Proc) {
				res, err := fs.Read(p, clientNodes[i], "file", dfs.ReadParallel)
				if err != nil {
					panic(err)
				}
				_ = res
				durations[i] = p.Now() - start
			})
		}
		sim.Run()
		sort.Float64s(durations)
		mean := 0.0
		for _, d := range durations {
			mean += d
		}
		mean /= clients
		t.Row(v.name, mean, durations[(clients*9)/10], durations[clients-1])
		// Datanode load balance: max/mean of bytes served off each disk.
		var maxServed, sumServed float64
		served := 0
		for _, nd := range cl.Nodes()[:18] {
			b := nd.DiskRead().BytesServed()
			if b == 0 {
				continue
			}
			served++
			sumServed += b
			if b > maxServed {
				maxServed = b
			}
		}
		if served > 0 {
			fmt.Printf("  %s: %d datanodes served reads, load imbalance max/mean = %.2f\n",
				v.name, served, maxServed/(sumServed/float64(served)))
		}
	}
	t.Flush()
	fmt.Println("Carousel reads touch 10 of 12 servers at 1/10 of the volume each, so")
	fmt.Println("concurrent readers collide less on any one datanode's read cap.")
	fmt.Println()
	return nil
}

// figDegraded extends the paper's evaluation with the degraded-read
// MapReduce scenario its related work (Li et al. [23]) motivates: one data
// block is lost and the job must reconstruct that split remotely. An RS
// degraded map task downloads k full blocks; a Carousel task downloads k
// split-lengths (p/k times less) because the missing data units solve
// row-class by row-class.
func figDegraded(scale int) error {
	bench.Section(os.Stdout, fmt.Sprintf("Extension: wordcount with one lost block (scale 1/%d)", scale))
	car, err := carousel.New(12, 6, 10, 12)
	if err != nil {
		return err
	}
	rs, err := reedsolomon.New(12, 6)
	if err != nil {
		return err
	}
	blockSize := blockSizeFor(scale, car.BlockAlign(), 100)
	data := workload.Text(6*blockSize, 12)
	t := bench.NewTable(os.Stdout, "scheme", "healthy job (s)", "degraded job (s)", "slowdown")
	for _, v := range []struct {
		name   string
		scheme dfs.Scheme
	}{
		{"RS(12,6)", dfs.RS{Code: rs}},
		{"Carousel(12,6,10,12)", dfs.Carousel{Code: car}},
	} {
		var times [2]float64
		for i, fail := range []bool{false, true} {
			sim := cluster.NewSim()
			cl := cluster.NewCluster(sim, slaves, scaledSpec(calib, scale))
			fs := dfs.New(cl, cl.Nodes())
			if _, err := fs.Write("input", data, blockSize, v.scheme); err != nil {
				return err
			}
			if fail {
				if err := fs.FailBlock("input", 0, 0); err != nil {
					return err
				}
			}
			eng := mapreduce.NewEngine(cl, fs, cl.Nodes(), mapreduce.CostSpec{
				TaskOverhead: taskOverhead, MapCPUFactor: 1, ReduceCPUFactor: 1,
			})
			res, err := eng.Run(mapreduce.WordCountJob("input", reducers))
			if err != nil {
				return err
			}
			times[i] = res.JobSeconds
		}
		t.Row(v.name, times[0], times[1], fmt.Sprintf("%.2fx", times[1]/times[0]))
	}
	t.Flush()
	fmt.Println("Carousel degrades more gracefully: its lost split is 1/p of the data and")
	fmt.Println("is rebuilt from k split-sized reads instead of k full blocks.")
	fmt.Println()
	return nil
}

func fail(err error) {
	obs.SetDefaultLogger(false).Error("benchmark failed", "err", err)
	os.Exit(1)
}

// scaledSpec divides every bandwidth by scale.
func scaledSpec(spec cluster.NodeSpec, scale int) cluster.NodeSpec {
	s := float64(scale)
	spec.DiskReadBW /= s
	spec.DiskWriteBW /= s
	spec.NetInBW /= s
	spec.NetOutBW /= s
	spec.ComputeBW /= s
	return spec
}

// blockSizeFor returns the scaled block size aligned for every code used.
func blockSizeFor(scale int, aligns ...int) int {
	align := 1
	for _, a := range aligns {
		align = align / gcd(align, a) * a
	}
	size := fullBlock / scale
	return size / align * align
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// runJob writes the data under the scheme on a fresh cluster and runs the
// job once (the simulation is deterministic, so one run is the mean).
func runJob(scale int, scheme dfs.Scheme, blockSize int, data []byte, job func(string) mapreduce.Job) (*mapreduce.Result, error) {
	sim := cluster.NewSim()
	cl := cluster.NewCluster(sim, slaves, scaledSpec(calib, scale))
	fs := dfs.New(cl, cl.Nodes())
	if _, err := fs.Write("input", data, blockSize, scheme); err != nil {
		return nil, err
	}
	eng := mapreduce.NewEngine(cl, fs, cl.Nodes(), mapreduce.CostSpec{
		TaskOverhead:    taskOverhead,
		MapCPUFactor:    1,
		ReduceCPUFactor: 1,
	})
	return eng.Run(job("input"))
}

func fig9(scale int) error {
	bench.Section(os.Stdout, fmt.Sprintf("Fig. 9: Hadoop jobs, RS(12,6) vs Carousel(12,6,10,12) — 3 GB file, 512 MB blocks (scale 1/%d)", scale))
	car, err := carousel.New(12, 6, 10, 12)
	if err != nil {
		return err
	}
	rs, err := reedsolomon.New(12, 6)
	if err != nil {
		return err
	}
	blockSize := blockSizeFor(scale, car.BlockAlign(), 100)
	fileSize := 6 * blockSize
	text := workload.Text(fileSize, 9)
	records := workload.Records(fileSize, 100, 9)

	t := bench.NewTable(os.Stdout, "benchmark", "scheme", "map (s)", "reduce (s)", "job (s)")
	type cse struct {
		bench string
		data  []byte
		job   func(string) mapreduce.Job
	}
	cases := []cse{
		{"terasort", records, func(f string) mapreduce.Job { return mapreduce.TerasortJob(f, reducers) }},
		{"wordcount", text, func(f string) mapreduce.Job { return mapreduce.WordCountJob(f, reducers) }},
	}
	type sch struct {
		name   string
		scheme dfs.Scheme
	}
	schemes := []sch{
		{"RS", dfs.RS{Code: rs}},
		{"Carousel", dfs.Carousel{Code: car}},
	}
	results := make(map[string]*mapreduce.Result)
	for _, c := range cases {
		for _, s := range schemes {
			res, err := runJob(scale, s.scheme, blockSize, c.data, c.job)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", c.bench, s.name, err)
			}
			results[c.bench+"/"+s.name] = res
			t.Row(c.bench, s.name, res.AvgMapSeconds, res.AvgReduceSeconds, res.JobSeconds)
		}
	}
	t.Flush()
	for _, c := range cases {
		rsr := results[c.bench+"/RS"]
		crr := results[c.bench+"/Carousel"]
		fmt.Printf("%s: map time saved %.1f%%, job time saved %.1f%% (paper: wordcount 46.8%% map, terasort 39.7%% map / 15.9%% job)\n",
			c.bench, 100*(1-crr.AvgMapSeconds/rsr.AvgMapSeconds), 100*(1-crr.JobSeconds/rsr.JobSeconds))
	}
	fmt.Println()
	return nil
}

func fig10(scale int) error {
	bench.Section(os.Stdout, fmt.Sprintf("Fig. 10: job completion time vs p, plus replication (scale 1/%d)", scale))
	ps := []int{6, 8, 10, 12}
	codes := make(map[int]*carousel.Code, len(ps))
	aligns := []int{100}
	for _, p := range ps {
		c, err := carousel.New(12, 6, 10, p)
		if err != nil {
			return err
		}
		codes[p] = c
		aligns = append(aligns, c.BlockAlign())
	}
	blockSize := blockSizeFor(scale, aligns...)
	fileSize := 6 * blockSize
	text := workload.Text(fileSize, 10)
	records := workload.Records(fileSize, 100, 10)

	t := bench.NewTable(os.Stdout, "scheme", "terasort job (s)", "wordcount job (s)")
	run := func(name string, scheme dfs.Scheme) error {
		ts, err := runJob(scale, scheme, blockSize, records, func(f string) mapreduce.Job { return mapreduce.TerasortJob(f, reducers) })
		if err != nil {
			return fmt.Errorf("%s terasort: %w", name, err)
		}
		wc, err := runJob(scale, scheme, blockSize, text, func(f string) mapreduce.Job { return mapreduce.WordCountJob(f, reducers) })
		if err != nil {
			return fmt.Errorf("%s wordcount: %w", name, err)
		}
		t.Row(name, ts.JobSeconds, wc.JobSeconds)
		return nil
	}
	if err := run("1x replication", dfs.Replication{Copies: 1}); err != nil {
		return err
	}
	for _, p := range ps {
		if err := run(fmt.Sprintf("Carousel p=%d", p), dfs.Carousel{Code: codes[p]}); err != nil {
			return err
		}
	}
	if err := run("2x replication", dfs.Replication{Copies: 2}); err != nil {
		return err
	}
	t.Flush()
	fmt.Println("Expected shape: job time falls as p grows; p=6 tracks 1x replication")
	fmt.Println("(and RS in Fig. 9); p=12 approaches 2x replication at half the storage.")
	fmt.Println()
	return nil
}

// measureDecodeBW measures the real decode throughput of a codec on this
// machine, used to charge client decode time in Fig. 11.
func measureDecodeBW(decode func() int) float64 {
	secs := bench.MeasureSeconds(2, func() { decode() })
	if secs <= 0 {
		return 0
	}
	return float64(decode()) / secs
}

func fig11(scale int) error {
	bench.Section(os.Stdout, fmt.Sprintf("Fig. 11: retrieving the 3 GB file, datanode reads capped at 300 Mbps (scale 1/%d)", scale))
	car, err := carousel.New(12, 6, 10, 10)
	if err != nil {
		return err
	}
	rs, err := reedsolomon.New(12, 6)
	if err != nil {
		return err
	}
	blockSize := blockSizeFor(scale, car.BlockAlign())
	fileSize := 6 * blockSize
	data := workload.Text(fileSize, 11)

	// Real decode throughput of this machine's codecs, for the degraded
	// cases.
	probe := bench.RandomShards(6, car.BlockAlign()*13000, 1)
	carBlocks, err := car.Encode(probe)
	if err != nil {
		return err
	}
	carBW := measureDecodeBW(func() int {
		avail := make([][]byte, 12)
		copy(avail, carBlocks)
		avail[0] = nil
		out, err := car.ParallelRead(avail)
		if err != nil {
			panic(err)
		}
		return len(out) / 6 // bytes of reconstructed output
	})
	rsProbe := bench.RandomShards(6, len(probe[0]), 2)
	rsBlocks, err := rs.Encode(rsProbe)
	if err != nil {
		return err
	}
	rsBW := measureDecodeBW(func() int {
		avail := make([][]byte, 12)
		copy(avail, rsBlocks)
		avail[0] = nil
		out, err := rs.Decode(avail)
		if err != nil {
			panic(err)
		}
		return len(out[0])
	})
	fmt.Printf("measured decoder throughput: RS %.0f MB/s, Carousel %.0f MB/s\n", rsBW/1e6, carBW/1e6)

	type variant struct {
		name   string
		scheme dfs.Scheme
		mode   dfs.ReadMode
		bw     float64
	}
	variants := []variant{
		{"HDFS 3x replication (sequential get)", dfs.Replication{Copies: 3}, dfs.ReadSequential, 0},
		{"RS (parallel, k=6 streams)", dfs.RS{Code: rs}, dfs.ReadParallel, rsBW},
		{"Carousel (parallel, p=10 streams)", dfs.Carousel{Code: car}, dfs.ReadParallel, carBW},
	}
	t := bench.NewTable(os.Stdout, "scheme", "no failure (s)", "one failure (s)")
	for _, v := range variants {
		var times [2]float64
		for fi, withFailure := range []bool{false, true} {
			sim := cluster.NewSim()
			spec := scaledSpec(cluster.NodeSpec{DiskReadBW: 300 * mbps}, scale)
			cl := cluster.NewCluster(sim, 18, spec)
			client := cl.AddNode("client", scaledSpec(cluster.NodeSpec{NetInBW: 2500 * mbps}, scale))
			fs := dfs.New(cl, cl.Nodes()[:18])
			if v.bw > 0 {
				fs.DecodeBW[v.scheme.Name()] = v.bw / float64(scale)
			}
			if _, err := fs.Write("file", data, blockSize, v.scheme); err != nil {
				return err
			}
			if withFailure {
				// Remove one block holding original data; for replication
				// that is one replica of a block (others survive).
				if _, isRepl := v.scheme.(dfs.Replication); isRepl {
					if err := fs.FailReplica("file", 0, 0, 0); err != nil {
						return err
					}
				} else if err := fs.FailBlock("file", 0, 0); err != nil {
					return err
				}
			}
			var done float64
			var rerr error
			sim.Go("get", func(p *cluster.Proc) {
				res, err := fs.Read(p, client, "file", v.mode)
				if err != nil {
					rerr = err
					return
				}
				if len(res.Data) != fileSize {
					rerr = fmt.Errorf("short read: %d of %d", len(res.Data), fileSize)
					return
				}
				done = p.Now()
			})
			sim.Run()
			if rerr != nil {
				return fmt.Errorf("%s: %w", v.name, rerr)
			}
			times[fi] = done
		}
		t.Row(v.name, times[0], times[1])
	}
	t.Flush()
	fmt.Println("Expected shape: parallel reads beat the sequential get by a wide margin;")
	fmt.Println("Carousel's 10 streams beat RS's 6 (paper: 29.0% less time without failure,")
	fmt.Println("75.4% less than the built-in command with one failure).")
	fmt.Println()
	return nil
}
