package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"testing"

	"carousel/internal/bench"
	"carousel/internal/blockserver"
	"carousel/internal/carousel"
	"carousel/internal/workload"
)

// netJSONPath is where -json writes the machine-readable snapshot of the
// real-TCP pipelined read/write A/B (the `make bench-net` artifact).
const netJSONPath = "BENCH_clusterbench.json"

type netEntry struct {
	Case string `json:"case"`
	// GoMaxProcs is the per-row sweep axis: the GOMAXPROCS value this row
	// was measured under (see -maxprocs).
	GoMaxProcs  int     `json:"gomaxprocs"`
	MBps        float64 `json:"mb_per_s"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// DialsPerRead counts fresh TCP connections a steady-state operation
	// opens: zero for the pooled pipeline, one per source per stripe for
	// the dial-per-stripe baseline.
	DialsPerRead int64 `json:"dials_per_read"`
}

// figNet is the tentpole A/B on real sockets: the same multi-stripe file is
// read (and written) through two stores over one live TCP server set —
// the pre-pipeline baseline (sequential stripes, a fresh dial per RPC,
// pool disabled) against the pipelined engine (depth-4 stripe pipeline
// over pooled connections and pooled buffers). Unlike figures 9-11 this is
// not simulated: throughput, allocations, and dial counts come from
// testing.Benchmark over the loopback cluster. Each case is benchmarked
// reps times and the fastest rep is reported — scheduler noise only ever
// slows a run down, so best-of-reps is the least-noise estimate of what
// each engine can actually sustain. The sweep slice runs the whole A/B
// once per GOMAXPROCS value (pinning the runtime and the worker pool via
// setMaxProcs), contributing one row per case per value.
func figNet(mib, reps int, sweep []int, jsonOut bool) error {
	if mib < 1 {
		mib = 1
	}
	if reps < 1 {
		reps = 1
	}
	code, err := carousel.New(12, 6, 10, 10)
	if err != nil {
		return err
	}
	// ~256 KiB of original data per stripe: the small-split regime EC-Cache
	// style caches run in, where per-stripe latency (dials, round trips,
	// per-RPC overhead) — not wire bandwidth — bounds a sequential reader,
	// which is exactly what the pipeline is built to hide.
	stripes := mib * 4
	if stripes < 8 {
		stripes = 8
	}
	k := code.K()
	blockSize := (mib << 20) / (stripes * k)
	blockSize -= blockSize % code.BlockAlign()
	if blockSize <= 0 {
		blockSize = code.BlockAlign()
	}
	size := stripes * k * blockSize
	bench.Section(os.Stdout, fmt.Sprintf(
		"Net A/B: %d-stripe ReadFile/WriteFile over real TCP, Carousel(12,6,10,10), %.1f MiB file",
		stripes, float64(size)/(1<<20)))

	srvs := make([]*blockserver.Server, code.N())
	addrs := make([]string, code.N())
	for i := range srvs {
		srvs[i] = blockserver.NewServer(code)
		addr, err := srvs[i].Start("127.0.0.1:0")
		if err != nil {
			return err
		}
		defer srvs[i].Close()
		addrs[i] = addr
	}
	data := workload.Text(size, 17)

	variants := []netVariant{
		{"sequential+dial-per-stripe", "baseline",
			[]blockserver.StoreOption{blockserver.WithPipelineDepth(1), blockserver.WithPoolSize(0)}},
		{"pipelined+pooled", "engine", nil},
	}
	results := make([]netEntry, 0, 2*len(variants)*len(sweep))
	for _, mp := range sweep {
		setMaxProcs(mp)
		if len(sweep) > 1 {
			bench.Section(os.Stdout, fmt.Sprintf("GOMAXPROCS = %d", mp))
		}
		rows, err := netPass(reps, mp, code, addrs, blockSize, size, data, variants)
		if err != nil {
			return err
		}
		results = append(results, rows...)
	}
	if jsonOut {
		return writeNetJSON(mib, stripes, reps, results)
	}
	return nil
}

// netVariant is one engine configuration of the read/write A/B.
type netVariant struct {
	name string
	key  string
	opts []blockserver.StoreOption
}

// netPass runs the read/write A/B once at the current GOMAXPROCS, printing
// its table and speedup lines and returning the JSON rows stamped with mp.
func netPass(reps, mp int, code *carousel.Code, addrs []string, blockSize, size int, data []byte,
	variants []netVariant) ([]netEntry, error) {
	ctx := context.Background()
	t := bench.NewTable(os.Stdout, "case", "MB/s", "ms/op", "allocs/op", "dials/read")
	results := make([]netEntry, 0, 2*len(variants))
	speedup := make(map[string]float64)
	for _, v := range variants {
		st, err := blockserver.NewStore(code, addrs, blockSize, v.opts...)
		if err != nil {
			return nil, err
		}
		// Seed the file (and for the write benchmark, measure re-writes of
		// the same blocks on warm servers).
		if _, err := st.WriteFile(ctx, "netfile", data); err != nil {
			st.Close()
			return nil, err
		}
		out, _, err := st.ReadFile(ctx, "netfile", size)
		if err != nil {
			st.Close()
			return nil, err
		}
		if !bytes.Equal(out, data) {
			st.Close()
			return nil, fmt.Errorf("%s: read mismatch", v.name)
		}
		// Steady-state dial cost of one read, after the pool is warm.
		_, stats, err := st.ReadFile(ctx, "netfile", size)
		if err != nil {
			st.Close()
			return nil, err
		}
		var dials int64
		for _, d := range stats.Dials {
			dials += d
		}
		for _, op := range []struct {
			kind string
			run  func() error
		}{
			{"read", func() error {
				out, _, err := st.ReadFile(ctx, "netfile", size)
				if err == nil && len(out) != size {
					err = fmt.Errorf("short read: %d of %d", len(out), size)
				}
				return err
			}},
			{"write", func() error {
				_, err := st.WriteFile(ctx, "netfile", data)
				return err
			}},
		} {
			var benchErr error
			var r testing.BenchmarkResult
			for rep := 0; rep < reps && benchErr == nil; rep++ {
				rr := testing.Benchmark(func(b *testing.B) {
					b.SetBytes(int64(size))
					for i := 0; i < b.N && benchErr == nil; i++ {
						benchErr = op.run()
					}
				})
				if rep == 0 || rr.NsPerOp() < r.NsPerOp() {
					r = rr
				}
			}
			if benchErr != nil {
				st.Close()
				return nil, fmt.Errorf("%s %s: %w", v.name, op.kind, benchErr)
			}
			mbps := float64(size) * float64(r.N) / r.T.Seconds() / 1e6
			name := op.kind + "/" + v.name
			e := netEntry{
				Case:        name,
				GoMaxProcs:  mp,
				MBps:        mbps,
				NsPerOp:     r.NsPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
			dialCell := "-"
			if op.kind == "read" {
				e.DialsPerRead = dials
				dialCell = fmt.Sprint(dials)
			}
			speedup[op.kind+"/"+v.key] = mbps
			results = append(results, e)
			t.Row(name, mbps, float64(r.NsPerOp())/1e6, r.AllocsPerOp(), dialCell)
		}
		st.Close()
	}
	t.Flush()
	for _, kind := range []string{"read", "write"} {
		base, eng := speedup[kind+"/baseline"], speedup[kind+"/engine"]
		if base > 0 {
			fmt.Printf("%s speedup: %.2fx (pipelined %.0f MB/s vs sequential dial-per-stripe %.0f MB/s)\n",
				kind, eng/base, eng, base)
		}
	}
	fmt.Println()
	return results, nil
}

// netSection is the read/write A/B's slot in the sectioned benchDoc.
type netSection struct {
	FileMiB int        `json:"file_mib"`
	Stripes int        `json:"stripes"`
	Reps    int        `json:"reps"`
	Code    string     `json:"code"`
	Results []netEntry `json:"results"`
}

func writeNetJSON(mib, stripes, reps int, results []netEntry) error {
	return updateBenchJSON(func(doc *benchDoc) {
		doc.Net = &netSection{
			FileMiB: mib,
			Stripes: stripes,
			Reps:    reps,
			Code:    "Carousel(12,6,10,10)",
			Results: results,
		}
	})
}
