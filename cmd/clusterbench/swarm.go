package main

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"carousel/internal/bench"
	"carousel/internal/blockserver"
	"carousel/internal/carousel"
	"carousel/internal/faultnet"
	"carousel/internal/obs"
	"carousel/internal/workload"
)

// figSwarm is the hot-read measurement vehicle: an open-loop Poisson
// swarm over a Zipf object population, A/B'ing the stripe cache off vs on
// at the same offered load, plus both again under faultnet straggler
// injection. Open loop means arrivals do not wait for completions — the
// generator paces requests by absolute arrival times drawn from a seeded
// exponential inter-arrival process, so an overloaded variant queues (and
// sheds above the client cap) instead of silently slowing the load down,
// the coordinated-omission trap closed-loop benchmarks fall into.
// Latency is measured from each request's scheduled arrival, through the
// existing obs.WindowHistogram quantiles.
//
// The offered rate is calibrated once — a short closed-loop probe of the
// cache-off store, multiplied by swarmOverload — and then held identical
// for every variant, so the A/B compares engines at equal offered load.
// The Zipf object sequence is seeded and drawn single-threaded by the
// dispatcher, so every variant (and every host) replays the identical
// request sequence.
func figSwarm(objs, cacheMiB int, dur time.Duration, rate float64, maxClients int, seed int64, jsonOut bool) error {
	if objs < 8 {
		objs = 8
	}
	if maxClients < 16 {
		maxClients = 16
	}
	if dur <= 0 {
		dur = 3 * time.Second
	}
	code, err := carousel.New(12, 6, 10, 10)
	if err != nil {
		return err
	}
	k := code.K()
	// One stripe per object, ~24 KiB of original data: the small-object
	// regime a hot-read cache serves (EC-Cache style), where per-request
	// overhead and round trips dominate, not wire bandwidth.
	blockSize := (24 << 10) / k
	blockSize -= blockSize % code.BlockAlign()
	if blockSize <= 0 {
		blockSize = code.BlockAlign()
	}
	objSize := k * blockSize
	bench.Section(os.Stdout, fmt.Sprintf(
		"Swarm: open-loop Zipf(s=%.1f) over %d x %d KiB objects, Carousel(12,6,10,10), cache %d MiB, up to %d clients",
		swarmZipfS, objs, objSize>>10, cacheMiB, maxClients))

	// Every server sits behind a faultnet injector so the straggler
	// variants can slow a subset down without rebooting the cluster.
	srvs := make([]*blockserver.Server, code.N())
	addrs := make([]string, code.N())
	injectors := make([]*faultnet.Injector, code.N())
	for i := range srvs {
		raw, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		injectors[i] = faultnet.NewInjector()
		srvs[i] = blockserver.NewServer(code)
		addr, err := srvs[i].StartListener(injectors[i].Wrap(raw))
		if err != nil {
			return err
		}
		defer srvs[i].Close()
		addrs[i] = addr
	}

	// Seed the population once; the variants' stores share the servers.
	names := make([]string, objs)
	{
		seedStore, err := blockserver.NewStore(code, addrs, blockSize)
		if err != nil {
			return err
		}
		ctx := context.Background()
		for i := range names {
			names[i] = fmt.Sprintf("swarm/obj%04d", i)
			if _, err := seedStore.WriteFile(ctx, names[i], workload.Text(objSize, seed+int64(i))); err != nil {
				seedStore.Close()
				return err
			}
		}
		seedStore.Close()
	}

	// Calibrate the offered load on the cache-off engine, then overload it:
	// the open-loop generator offers swarmOverload times what the uncached
	// store can sustain, which is exactly the regime where a hot-set cache
	// is the difference between serving and drowning.
	if rate <= 0 {
		capacity, err := swarmCalibrate(code, addrs, blockSize, names, objSize, seed)
		if err != nil {
			return err
		}
		rate = capacity * swarmOverload
		fmt.Printf("calibrated: cache-off closed-loop capacity %.0f reads/s; offering %.0f reads/s (%.1fx)\n\n",
			capacity, rate, swarmOverload)
	} else {
		fmt.Printf("offered load pinned by -swarmrate: %.0f reads/s\n\n", rate)
	}

	variants := []swarmVariant{
		{"cache-off", 0, 0},
		{"cache-on", cacheMiB, 0},
		{"cache-off+stragglers", 0, swarmStragglers},
		{"cache-on+stragglers", cacheMiB, swarmStragglers},
	}
	t := bench.NewTable(os.Stdout, "case", "reads/s", "MB/s", "p50 ms", "p99 ms", "p999 ms", "hit %", "shed")
	results := make([]swarmEntry, 0, len(variants))
	for _, v := range variants {
		for i := 0; i < v.stragglers && i < len(injectors); i++ {
			injectors[i].SetDefault(faultnet.Policy{DelayWrite: swarmStragglerDelay})
		}
		e, err := swarmPass(code, addrs, blockSize, names, objSize, v, rate, dur, maxClients, seed)
		for i := 0; i < v.stragglers && i < len(injectors); i++ {
			injectors[i].SetDefault(faultnet.Policy{})
		}
		if err != nil {
			return fmt.Errorf("%s: %w", v.name, err)
		}
		results = append(results, e)
		hitCell := "-"
		if v.cacheMiB > 0 {
			hitCell = fmt.Sprintf("%.1f", e.CacheHitRate*100)
		}
		t.Row(v.name, e.OpsPerS, e.MBPerS, e.P50MS, e.P99MS, e.P999MS, hitCell, e.Shed)
	}
	t.Flush()
	if off, on := results[0], results[1]; off.OpsPerS > 0 {
		fmt.Printf("cache-on vs cache-off at equal offered load: %.2fx reads/s (%.0f vs %.0f), p99 %.2f ms vs %.2f ms\n",
			on.OpsPerS/off.OpsPerS, on.OpsPerS, off.OpsPerS, on.P99MS, off.P99MS)
	}
	if off, on := results[2], results[3]; off.OpsPerS > 0 {
		fmt.Printf("with %d stragglers (+%s per response write): %.2fx reads/s, p99 %.2f ms vs %.2f ms\n",
			swarmStragglers, swarmStragglerDelay, on.OpsPerS/off.OpsPerS, on.P99MS, off.P99MS)
	}
	fmt.Println()
	if jsonOut {
		return updateBenchJSON(func(doc *benchDoc) {
			doc.Swarm = &swarmSection{
				Objects:    objs,
				ObjectKiB:  objSize >> 10,
				ZipfS:      swarmZipfS,
				Seed:       seed,
				DurationS:  dur.Seconds(),
				RatePerS:   rate,
				MaxClients: maxClients,
				Code:       "Carousel(12,6,10,10)",
				Results:    results,
			}
		})
	}
	return nil
}

const (
	// swarmZipfS is the population skew; s≈1.1 is the classic web-object
	// popularity exponent.
	swarmZipfS = 1.1
	// swarmOverload multiplies the calibrated cache-off capacity into the
	// offered open-loop rate.
	swarmOverload = 3.0
	// swarmStragglers is how many servers the straggler variants slow, and
	// swarmStragglerDelay how much each of their response writes is delayed.
	swarmStragglers     = 2
	swarmStragglerDelay = 15 * time.Millisecond
	// swarmHedge is the uniform hedge deadline: low enough that a straggler
	// triggers the any-k fallback instead of stalling the pipeline.
	swarmHedge = 75 * time.Millisecond
	// swarmDrainGrace bounds how long a pass waits for queued requests
	// after the arrival window closes before cancelling the stragglers.
	swarmDrainGrace = 15 * time.Second
)

// swarmVariant is one engine configuration of the swarm A/B.
type swarmVariant struct {
	name       string
	cacheMiB   int
	stragglers int
}

// swarmEntry is one variant's measured row in the JSON snapshot.
type swarmEntry struct {
	Case       string `json:"case"`
	CacheMiB   int    `json:"cache_mib"`
	Stragglers int    `json:"stragglers"`
	// Ops counts completed reads; Errors failed reads; Shed arrivals
	// rejected because maxClients requests were already in flight (the
	// open-loop overload signal).
	Ops     int64   `json:"ops"`
	Errors  int64   `json:"errors"`
	Shed    int64   `json:"shed"`
	OpsPerS float64 `json:"ops_per_s"`
	MBPerS  float64 `json:"mb_per_s"`
	// Latency quantiles from the scheduled arrival time (queueing
	// included), via obs.WindowHistogram.
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
	// PeakClients is the highest concurrent in-flight count observed.
	PeakClients int64 `json:"peak_clients"`
	// CacheHitRate and CoalescedWaiters come from the store's cache
	// instance (zero for the cache-off variants).
	CacheHitRate     float64 `json:"cache_hit_rate"`
	CoalescedWaiters int64   `json:"coalesced_waiters"`
}

// swarmSection is the swarm benchmark's slot in the sectioned benchDoc.
type swarmSection struct {
	Objects    int          `json:"objects"`
	ObjectKiB  int          `json:"object_kib"`
	ZipfS      float64      `json:"zipf_s"`
	Seed       int64        `json:"seed"`
	DurationS  float64      `json:"duration_s"`
	RatePerS   float64      `json:"rate_per_s"`
	MaxClients int          `json:"max_clients"`
	Code       string       `json:"code"`
	Results    []swarmEntry `json:"results"`
}

// swarmCalibrate measures the cache-off store's closed-loop read capacity
// with a small worker pool — the baseline the open-loop rate overloads.
func swarmCalibrate(code *carousel.Code, addrs []string, blockSize int, names []string, objSize int, seed int64) (float64, error) {
	st, err := blockserver.NewStore(code, addrs, blockSize,
		blockserver.WithHedgeDelay(swarmHedge), blockserver.WithCacheDisabled())
	if err != nil {
		return 0, err
	}
	defer st.Close()
	const workers = 12
	const probe = 1200 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), probe)
	defer cancel()
	var ops atomic.Int64
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			z := workload.Fork(swarmZipfS, len(names), seed, w)
			for ctx.Err() == nil {
				if _, _, err := st.ReadFile(ctx, names[z.Next()], objSize); err == nil {
					ops.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(t0).Seconds()
	if elapsed <= 0 || ops.Load() == 0 {
		return 0, fmt.Errorf("calibration made no progress")
	}
	return float64(ops.Load()) / elapsed, nil
}

// swarmPass runs one variant under the shared offered load and returns
// its measured row.
func swarmPass(code *carousel.Code, addrs []string, blockSize int, names []string, objSize int,
	v swarmVariant, rate float64, dur time.Duration, maxClients int, seed int64) (swarmEntry, error) {
	opts := []blockserver.StoreOption{blockserver.WithHedgeDelay(swarmHedge)}
	if v.cacheMiB > 0 {
		opts = append(opts, blockserver.WithStripeCache(int64(v.cacheMiB)<<20))
	} else {
		opts = append(opts, blockserver.WithCacheDisabled())
	}
	st, err := blockserver.NewStore(code, addrs, blockSize, opts...)
	if err != nil {
		return swarmEntry{}, err
	}
	defer st.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	win := obs.NewWindowHistogram(5*time.Minute, 6)
	var ops, errs, shed, inflight, peak atomic.Int64
	tokens := make(chan struct{}, maxClients)
	// The object sequence is drawn single-threaded here, from the same
	// seed for every variant: identical request streams, only the engine
	// differs. The arrival process has its own seeded source.
	z := workload.NewZipf(swarmZipfS, len(names), seed)
	arrivals := rand.New(rand.NewSource(seed ^ 0x51e55))
	var wg sync.WaitGroup
	start := time.Now()
	next := start
	deadline := start.Add(dur)
	for next.Before(deadline) {
		// Absolute-time pacing: falling behind shortens the next sleep
		// instead of stretching the schedule (open loop, no coordinated
		// omission).
		next = next.Add(time.Duration(arrivals.ExpFloat64() * float64(time.Second) / rate))
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		name := names[z.Next()]
		select {
		case tokens <- struct{}{}:
		default:
			// maxClients requests already in flight: the variant is drowning
			// and this arrival is shed (admission control, counted — not
			// silently slowing the generator down).
			shed.Add(1)
			continue
		}
		arrival := next
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-tokens }()
			n := inflight.Add(1)
			for p := peak.Load(); n > p && !peak.CompareAndSwap(p, n); p = peak.Load() {
			}
			defer inflight.Add(-1)
			out, _, err := st.ReadFile(ctx, name, objSize)
			if err != nil || len(out) != objSize {
				errs.Add(1)
				return
			}
			ops.Add(1)
			win.Observe(time.Since(arrival).Nanoseconds())
		}()
	}
	// Drain the queue: requests already admitted finish (their latency is
	// real and belongs in the tail), bounded by the grace period.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(swarmDrainGrace):
		cancel()
		<-done
	}
	elapsed := time.Since(start).Seconds()
	snap := win.Snapshot()
	e := swarmEntry{
		Case:        v.name,
		CacheMiB:    v.cacheMiB,
		Stragglers:  v.stragglers,
		Ops:         ops.Load(),
		Errors:      errs.Load(),
		Shed:        shed.Load(),
		OpsPerS:     float64(ops.Load()) / elapsed,
		MBPerS:      float64(ops.Load()) * float64(objSize) / elapsed / 1e6,
		P50MS:       float64(snap.Quantile(0.50)) / 1e6,
		P99MS:       float64(snap.Quantile(0.99)) / 1e6,
		P999MS:      float64(snap.Quantile(0.999)) / 1e6,
		PeakClients: peak.Load(),
	}
	if c := st.Cache(); c != nil {
		cs := c.Stats()
		if total := cs.Hits + cs.Misses; total > 0 {
			e.CacheHitRate = float64(cs.Hits) / float64(total)
		}
		e.CoalescedWaiters = cs.CoalescedWaiters
	}
	return e, nil
}
