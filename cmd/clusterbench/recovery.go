package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	"carousel/internal/bench"
	"carousel/internal/blockserver"
	"carousel/internal/carousel"
	"carousel/internal/faultnet"
	"carousel/internal/workload"
)

// benchDoc is the BENCH_clusterbench.json schema: one section per live-TCP
// figure, merged on write so `-fig net -json` and `-fig recovery -json`
// each refresh only their own section. GOMAXPROCS is a per-result-row axis
// (see netEntry/recoveryEntry), not a document-level fact, so a -maxprocs
// sweep can put every pass in one snapshot.
type benchDoc struct {
	Net      *netSection      `json:"net,omitempty"`
	Recovery *recoverySection `json:"recovery,omitempty"`
	Swarm    *swarmSection    `json:"swarm,omitempty"`
}

// updateBenchJSON reads the snapshot (tolerating a missing or old-schema
// file), lets the caller replace its section, and writes it back.
func updateBenchJSON(apply func(*benchDoc)) error {
	var doc benchDoc
	if raw, err := os.ReadFile(netJSONPath); err == nil {
		_ = json.Unmarshal(raw, &doc)
	}
	apply(&doc)
	out, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(netJSONPath, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", netJSONPath)
	return nil
}

type recoverySection struct {
	FileMiB int `json:"file_mib"`
	Stripes int `json:"stripes"`
	Reps    int `json:"reps"`
	// DelayUS is the emulated per-write network latency injected at every
	// server (microseconds), identical for both variants.
	DelayUS int64           `json:"delay_us"`
	Code    string          `json:"code"`
	Results []recoveryEntry `json:"results"`
}

type recoveryEntry struct {
	Case string `json:"case"`
	// GoMaxProcs is the per-row sweep axis: the GOMAXPROCS value this row
	// was measured under (see -maxprocs).
	GoMaxProcs int `json:"gomaxprocs"`
	// MBps is recovered block bytes per second — the Fig. 11 recovery
	// throughput quantity.
	MBps           float64 `json:"mb_per_s"`
	NsPerPass      int64   `json:"ns_per_pass"`
	BlocksRepaired int     `json:"blocks_repaired"`
	TrafficBytes   int64   `json:"traffic_bytes"`
	// HelpersUsed counts distinct helpers that served winning chunks in a
	// pass; with rotation this is all n-1 survivors.
	HelpersUsed int `json:"helpers_used"`
	// MaxOverMean is the hottest helper's chunk count over the mean across
	// the helpers used — 1.0 is perfectly balanced.
	MaxOverMean float64 `json:"max_over_mean_chunks"`
}

// helperSpread summarizes a pass's per-helper winning-chunk counts.
func helperSpread(chunks map[string]int64) (distinct int, maxOverMean float64) {
	var max, sum int64
	for _, c := range chunks {
		distinct++
		sum += c
		if c > max {
			max = c
		}
	}
	if distinct == 0 || sum == 0 {
		return distinct, 0
	}
	return distinct, float64(max) / (float64(sum) / float64(distinct))
}

// figRecovery is the recovery A/B on real sockets — the repo's Fig. 11
// reproduction for node repair: one server of a live 12-server loopback
// cluster is declared failed and every block it held (one per stripe) is
// regenerated, once through the sequential repair loop (concurrency 1,
// static first-d helpers — the pre-engine behavior) and once through the
// parallel recovery engine (depth-bounded pipeline, stripe-rotated
// helpers). Every server sits behind a faultnet injector adding delay to
// each response write — the tc-netem-style stand-in for a real datacenter
// RTT, identical for both variants, without which loopback's ~0 latency
// would hide exactly the stall the engine exists to overlap. Both variants
// share the pooled store; the A/B isolates repair scheduling. Reported
// MB/s is regenerated block bytes per second; best-of-reps as in figNet.
// The sweep slice runs the whole A/B once per GOMAXPROCS value, one row
// per case per value.
func figRecovery(mib, reps int, delay time.Duration, sweep []int, jsonOut bool) error {
	if mib < 1 {
		mib = 1
	}
	if reps < 1 {
		reps = 1
	}
	code, err := carousel.New(12, 6, 10, 10)
	if err != nil {
		return err
	}
	stripes := mib * 4
	if stripes < 8 {
		stripes = 8
	}
	k := code.K()
	blockSize := (mib << 20) / (stripes * k)
	blockSize -= blockSize % code.BlockAlign()
	if blockSize <= 0 {
		blockSize = code.BlockAlign()
	}
	size := stripes * k * blockSize
	const failed = 3
	bench.Section(os.Stdout, fmt.Sprintf(
		"Recovery A/B: regenerate server %d's %d blocks over real TCP, Carousel(12,6,10,10), %.1f MiB file, %s emulated per-write RTT",
		failed, stripes, float64(size)/(1<<20), delay))

	srvs := make([]*blockserver.Server, code.N())
	addrs := make([]string, code.N())
	for i := range srvs {
		raw, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		in := faultnet.NewInjector()
		in.SetDefault(faultnet.Policy{DelayWrite: delay})
		srvs[i] = blockserver.NewServer(code)
		addr, err := srvs[i].StartListener(in.Wrap(raw))
		if err != nil {
			return err
		}
		defer srvs[i].Close()
		addrs[i] = addr
	}
	data := workload.Text(size, 23)

	variants := []recoveryVariant{
		{"sequential+static-helpers", "baseline", []blockserver.RecoveryOption{
			blockserver.WithRecoveryConcurrency(1), blockserver.WithRecoveryStaticHelpers()}},
		{"parallel+rotated-helpers", "engine", nil},
	}
	results := make([]recoveryEntry, 0, len(variants)*len(sweep))
	for _, mp := range sweep {
		setMaxProcs(mp)
		if len(sweep) > 1 {
			bench.Section(os.Stdout, fmt.Sprintf("GOMAXPROCS = %d", mp))
		}
		rows, err := recoveryPass(reps, mp, failed, code, addrs, blockSize, stripes, size, data, variants)
		if err != nil {
			return err
		}
		results = append(results, rows...)
	}
	if jsonOut {
		return updateBenchJSON(func(doc *benchDoc) {
			doc.Recovery = &recoverySection{
				FileMiB: mib,
				Stripes: stripes,
				Reps:    reps,
				DelayUS: delay.Microseconds(),
				Code:    "Carousel(12,6,10,10)",
				Results: results,
			}
		})
	}
	return nil
}

// recoveryVariant is one repair-scheduling configuration of the A/B.
type recoveryVariant struct {
	name string
	key  string
	opts []blockserver.RecoveryOption
}

// recoveryPass runs the recovery A/B once at the current GOMAXPROCS,
// printing its table and speedup line and returning the JSON rows stamped
// with mp.
func recoveryPass(reps, mp, failed int, code *carousel.Code, addrs []string, blockSize, stripes, size int,
	data []byte, variants []recoveryVariant) ([]recoveryEntry, error) {
	ctx := context.Background()
	files := []blockserver.FileSpec{{Name: "recfile", Size: size}}
	t := bench.NewTable(os.Stdout, "case", "MB/s", "ms/pass", "helpers used", "max/mean chunks")
	results := make([]recoveryEntry, 0, len(variants))
	speedup := make(map[string]float64)
	for _, v := range variants {
		st, err := blockserver.NewStore(code, addrs, blockSize)
		if err != nil {
			return nil, err
		}
		if _, err := st.WriteFile(ctx, "recfile", data); err != nil {
			st.Close()
			return nil, err
		}
		// One untimed pass warms pool connections and repair plans and
		// yields the helper-balance evidence for the table.
		rep, err := st.RecoverServer(ctx, failed, files, v.opts...)
		if err != nil {
			st.Close()
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		if rep.BlocksRepaired != stripes {
			st.Close()
			return nil, fmt.Errorf("%s: repaired %d blocks, want %d", v.name, rep.BlocksRepaired, stripes)
		}
		var benchErr error
		var r testing.BenchmarkResult
		for repi := 0; repi < reps && benchErr == nil; repi++ {
			rr := testing.Benchmark(func(b *testing.B) {
				b.SetBytes(rep.BytesRecovered)
				for i := 0; i < b.N && benchErr == nil; i++ {
					_, benchErr = st.RecoverServer(ctx, failed, files, v.opts...)
				}
			})
			if repi == 0 || rr.NsPerOp() < r.NsPerOp() {
				r = rr
			}
		}
		st.Close()
		if benchErr != nil {
			return nil, fmt.Errorf("%s: %w", v.name, benchErr)
		}
		mbps := float64(rep.BytesRecovered) * float64(r.N) / r.T.Seconds() / 1e6
		used, mom := helperSpread(rep.HelperChunks)
		speedup[v.key] = mbps
		results = append(results, recoveryEntry{
			Case:           v.name,
			GoMaxProcs:     mp,
			MBps:           mbps,
			NsPerPass:      r.NsPerOp(),
			BlocksRepaired: rep.BlocksRepaired,
			TrafficBytes:   rep.TrafficBytes,
			HelpersUsed:    used,
			MaxOverMean:    mom,
		})
		t.Row(v.name, mbps, float64(r.NsPerOp())/1e6, fmt.Sprintf("%d of %d", used, code.N()-1), fmt.Sprintf("%.2f", mom))
	}
	t.Flush()
	if base := speedup["baseline"]; base > 0 {
		fmt.Printf("recovery speedup: %.2fx (parallel engine %.0f MB/s vs sequential repair loop %.0f MB/s)\n",
			speedup["engine"]/base, speedup["engine"], base)
	}
	fmt.Println()
	return results, nil
}
